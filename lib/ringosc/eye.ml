open Rlc_circuit

type config = {
  node : Rlc_tech.Node.t;
  l : float;
  h : float;
  k : float;
  segments : int;
  bit_period : float;
  bits : int;
  seed : int;
}

let config ?(segments = 12) ?(bits = 63) ?(seed = 0b1010101) ?bit_period node
    ~l ~h ~k =
  if segments < 1 then invalid_arg "Eye.config: segments < 1";
  if bits < 8 then invalid_arg "Eye.config: bits < 8";
  if seed land 0x7f = 0 then invalid_arg "Eye.config: zero LFSR seed";
  if l < 0.0 || h <= 0.0 || k <= 0.0 then
    invalid_arg "Eye.config: bad stage parameters";
  let bit_period =
    match bit_period with
    | Some t ->
        if t <= 0.0 then invalid_arg "Eye.config: bit_period <= 0";
        t
    | None ->
        4.0 *. Rlc_core.Delay.of_stage (Rlc_core.Stage.of_node node ~l ~h ~k)
  in
  { node; l; h; k; segments; bit_period; bits; seed }

(* x^7 + x^6 + 1 maximal LFSR *)
let prbs ~seed n =
  if seed land 0x7f = 0 then invalid_arg "Eye.prbs: zero seed";
  let state = ref (seed land 0x7f) in
  List.init n (fun _ ->
      let bit = !state land 1 in
      let feedback = ((!state lsr 6) lxor (!state lsr 5)) land 1 in
      state := ((!state lsl 1) lor feedback) land 0x7f;
      bit = 1)

type measurement = {
  eye_high : float;
  eye_low : float;
  eye_opening : float;
  delay_min : float;
  delay_max : float;
  jitter : float;
}

let stimulus_of_bits ~vdd ~bit_period ~rise bits =
  (* PWL corners: hold the level through each bit, ramp over [rise] at
     boundaries where the value changes *)
  let corners = ref [ (0.0, 0.0) ] in
  let prev = ref false in
  List.iteri
    (fun i b ->
      if b <> !prev then begin
        let t = float_of_int i *. bit_period in
        let v0 = if !prev then vdd else 0.0 in
        let v1 = if b then vdd else 0.0 in
        (* a transition at t = 0 coincides with the seed corner *)
        if t > 0.0 then corners := (t, v0) :: !corners;
        corners := (t +. rise, v1) :: !corners
      end;
      prev := b)
    bits;
  Stimulus.Pwl (List.rev !corners)

let run ?dt cfg =
  let vdd = cfg.node.Rlc_tech.Node.vdd in
  let stage = Rlc_core.Stage.of_node cfg.node ~l:cfg.l ~h:cfg.h ~k:cfg.k in
  let tau = Rlc_core.Delay.of_stage stage in
  let bits = prbs ~seed:cfg.seed cfg.bits in
  let rise = cfg.bit_period /. 20.0 in
  let nl = Netlist.create () in
  let src = Netlist.fresh_node nl in
  let drv = Netlist.fresh_node nl in
  let far = Netlist.fresh_node nl in
  Netlist.add_vsource nl src Netlist.ground
    (stimulus_of_bits ~vdd ~bit_period:cfg.bit_period ~rise bits);
  Netlist.add_resistor nl src drv (Rlc_core.Stage.rs stage);
  Netlist.add_capacitor nl drv Netlist.ground (Rlc_core.Stage.cp stage);
  Ladder.make nl
    {
      Ladder.r = stage.Rlc_core.Stage.line.Rlc_core.Line.r;
      l = stage.Rlc_core.Stage.line.Rlc_core.Line.l;
      c = stage.Rlc_core.Stage.line.Rlc_core.Line.c;
      length = cfg.h;
      segments = cfg.segments;
    }
    ~from_node:drv ~to_node:far;
  Netlist.add_capacitor nl far Netlist.ground (Rlc_core.Stage.cl stage);
  let t_end = (float_of_int cfg.bits +. 1.0) *. cfg.bit_period in
  let dt =
    match dt with Some d -> d | None -> Float.min (tau /. 200.0) (rise /. 4.0)
  in
  let result = Transient.run nl ~t_end ~dt ~probes:[ Transient.Node_v far ] in
  let w = Transient.get result (Transient.Node_v far) in
  (* sample each bit at 3/4 of its period, offset by the nominal delay *)
  let sample i =
    Rlc_waveform.Waveform.value_at w
      ((float_of_int i +. 0.75) *. cfg.bit_period +. tau)
  in
  let highs = ref [] and lows = ref [] in
  List.iteri
    (fun i b ->
      (* skip the first few warm-up bits *)
      if i >= 3 then
        if b then highs := sample i :: !highs else lows := sample i :: !lows)
    bits;
  if !highs = [] || !lows = [] then
    failwith "Eye.run: pattern too short to sample both levels";
  let eye_high = List.fold_left Float.min infinity !highs in
  let eye_low = List.fold_left Float.max neg_infinity !lows in
  (* per-transition delays: input edge times vs output 50% crossings *)
  let edge_times =
    let acc = ref [] and prev = ref false in
    List.iteri
      (fun i b ->
        if i >= 3 && b <> !prev then
          acc := (float_of_int i *. cfg.bit_period, b) :: !acc;
        prev := b)
      bits;
    List.rev !acc
  in
  let crossing_after t direction =
    let w_tail =
      Rlc_waveform.Waveform.slice w ~t0:t
        ~t1:(Float.min (Rlc_waveform.Waveform.t_end w) (t +. cfg.bit_period))
    in
    Rlc_waveform.Measure.first_crossing ~direction w_tail
      ~level:(0.5 *. vdd)
  in
  let delays =
    List.filter_map
      (fun (t, rising) ->
        match
          crossing_after t
            (if rising then Rlc_waveform.Measure.Rising
             else Rlc_waveform.Measure.Falling)
        with
        | Some tc -> Some (tc -. t)
        | None -> None)
      edge_times
  in
  if List.length delays < 2 then
    failwith "Eye.run: output misses transitions (eye collapsed)";
  let delay_min = List.fold_left Float.min infinity delays in
  let delay_max = List.fold_left Float.max neg_infinity delays in
  {
    eye_high;
    eye_low;
    eye_opening = (eye_high -. eye_low) /. vdd;
    delay_min;
    delay_max;
    jitter = delay_max -. delay_min;
  }
