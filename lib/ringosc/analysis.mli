(** Measurements over ring-oscillator simulations: the quantities
    behind Figures 9-12 of the paper. *)

type measurement = {
  period : float option;  (** oscillation period, s *)
  input_overshoot : float;  (** inverter-input excursion above VDD, V *)
  input_undershoot : float;  (** inverter-input excursion below 0, V *)
  peak_current : float;  (** |I| peak in the probed wire, A *)
  rms_current : float;  (** RMS wire current over the record, A *)
  peak_current_density : float;  (** A/m^2 over the wire cross-section *)
  rms_current_density : float;  (** A/m^2 *)
}

val measure : Ring.sim -> measurement
(** Discards the first 30% of the record (start-up transient), then
    measures the remainder. *)

val false_switching : baseline_period:float -> measurement -> bool
(** The Figure 11 criterion: the period collapsing well below the
    fundamental (here: below 60% of [baseline_period]) signals that
    undershoot-induced extra transitions are propagating around the
    ring. *)

val period_sweep :
  ?pool:Rlc_parallel.Pool.t ->
  ?stages:int ->
  ?segments:int ->
  ?dt:float ->
  ?t_end:float ->
  Rlc_tech.Node.t ->
  l_values:float list ->
  (float * measurement) list
(** RC-sized ring oscillator measured across line inductances —
    regenerates Figures 11 and 12.  Each inductance is an independent
    transient simulation; [pool] fans them out with results slotted
    back in [l_values] order (bit-identical for any domain count). *)
