let ( +: ) = Cx.( +: )
let ( -: ) = Cx.( -: )
let ( *: ) = Cx.( *: )

(* In-place Householder reduction to upper Hessenberg form. *)
let hessenberg h =
  let n = Cmatrix.rows h in
  for k = 0 to n - 3 do
    (* column k below the subdiagonal *)
    let len = n - k - 1 in
    let x = Array.init len (fun i -> Cmatrix.get h (k + 1 + i) k) in
    let norm_x =
      Float.sqrt (Array.fold_left (fun a z -> a +. Cx.norm2 z) 0.0 x)
    in
    let tail =
      Float.sqrt
        (Array.fold_left (fun a z -> a +. Cx.norm2 z) 0.0
           (Array.sub x 1 (len - 1)))
    in
    if tail > 1e-300 *. (1.0 +. norm_x) then begin
      (* alpha = -sign(x0) * ||x||, with complex sign e^{i arg x0} *)
      let alpha =
        if Cx.norm x.(0) = 0.0 then Cx.of_float (-.norm_x)
        else Cx.scale (-.norm_x /. Cx.norm x.(0)) x.(0)
      in
      let u = Array.copy x in
      u.(0) <- u.(0) -: alpha;
      let norm_u =
        Float.sqrt (Array.fold_left (fun a z -> a +. Cx.norm2 z) 0.0 u)
      in
      if norm_u > 1e-300 then begin
        let u = Array.map (Cx.scale (1.0 /. norm_u)) u in
        (* left: rows k+1..n-1 of all columns, H <- (I - 2 u uH) H *)
        for j = 0 to n - 1 do
          let dot = ref Cx.zero in
          for i = 0 to len - 1 do
            dot := !dot +: (Cx.conj u.(i) *: Cmatrix.get h (k + 1 + i) j)
          done;
          let s = Cx.scale 2.0 !dot in
          for i = 0 to len - 1 do
            Cmatrix.set h (k + 1 + i) j
              (Cmatrix.get h (k + 1 + i) j -: (u.(i) *: s))
          done
        done;
        (* right: columns k+1..n-1 of all rows, H <- H (I - 2 u uH) *)
        for i = 0 to n - 1 do
          let dot = ref Cx.zero in
          for j = 0 to len - 1 do
            dot := !dot +: (Cmatrix.get h i (k + 1 + j) *: u.(j))
          done;
          let s = Cx.scale 2.0 !dot in
          for j = 0 to len - 1 do
            Cmatrix.set h i (k + 1 + j)
              (Cmatrix.get h i (k + 1 + j) -: (s *: Cx.conj u.(j)))
          done
        done
      end
    end
  done

(* Eigenvalues of the 2x2 block [[a b];[c d]]. *)
let two_by_two a b c d =
  let tr = a +: d in
  let det = (a *: d) -: (b *: c) in
  let disc = Cx.sqrt ((tr *: tr) -: Cx.scale 4.0 det) in
  (Cx.scale 0.5 (tr +: disc), Cx.scale 0.5 (tr -: disc))

(* Wilkinson shift: the eigenvalue of the trailing 2x2 closest to d. *)
let wilkinson a b c d =
  let l1, l2 = two_by_two a b c d in
  if Cx.norm (l1 -: d) <= Cx.norm (l2 -: d) then l1 else l2

let subdiag_negligible h k =
  Cx.norm (Cmatrix.get h k (k - 1))
  <= 1e-14
     *. (Cx.norm (Cmatrix.get h (k - 1) (k - 1))
        +. Cx.norm (Cmatrix.get h k k)
        +. 1e-300)

(* One explicit shifted QR step on the standalone block [lo..hi]:
   H - mu I = QR (Givens), H <- RQ + mu I.  The block decouples from
   the rest once its boundary subdiagonals are negligible, so
   restricting the similarity transform to it preserves the spectrum. *)
let qr_step h lo hi mu =
  for k = lo to hi do
    Cmatrix.set h k k (Cmatrix.get h k k -: mu)
  done;
  let rot = Array.make (hi - lo) (1.0, Cx.zero) in
  for k = lo to hi - 1 do
    let f = Cmatrix.get h k k and g = Cmatrix.get h (k + 1) k in
    let c, s =
      let nf = Cx.norm f and ng = Cx.norm g in
      if ng = 0.0 then (1.0, Cx.zero)
      else if nf = 0.0 then (0.0, Cx.one)
      else begin
        let r = Float.sqrt ((nf *. nf) +. (ng *. ng)) in
        (nf /. r, Cx.scale (1.0 /. (nf *. r)) (f *: Cx.conj g))
      end
    in
    rot.(k - lo) <- (c, s);
    (* apply [ [c s]; [-conj s, c] ] to rows k, k+1 *)
    for j = k to hi do
      let a = Cmatrix.get h k j and b = Cmatrix.get h (k + 1) j in
      Cmatrix.set h k j (Cx.scale c a +: (s *: b));
      Cmatrix.set h (k + 1) j (Cx.scale c b -: (Cx.conj s *: a))
    done
  done;
  for k = lo to hi - 1 do
    let c, s = rot.(k - lo) in
    (* right-multiply columns k, k+1 by the rotation's adjoint *)
    for i = lo to Int.min hi (k + 1) do
      let a = Cmatrix.get h i k and b = Cmatrix.get h i (k + 1) in
      Cmatrix.set h i k (Cx.scale c a +: (Cx.conj s *: b));
      Cmatrix.set h i (k + 1) (Cx.scale c b -: (s *: a))
    done
  done;
  for k = lo to hi do
    Cmatrix.set h k k (Cmatrix.get h k k +: mu)
  done

let eigenvalues_cx ?max_iter a =
  let n = Cmatrix.rows a in
  if Cmatrix.cols a <> n then
    invalid_arg "Eig.eigenvalues: matrix not square";
  let max_iter = match max_iter with Some m -> m | None -> 40 * n in
  let h = Cmatrix.copy a in
  hessenberg h;
  let evals = Array.make n Cx.zero in
  let hi = ref (n - 1) in
  let iters = ref 0 in
  let stuck = ref 0 in
  while !hi >= 0 do
    if !hi = 0 then begin
      evals.(0) <- Cmatrix.get h 0 0;
      hi := -1
    end
    else if subdiag_negligible h !hi then begin
      evals.(!hi) <- Cmatrix.get h !hi !hi;
      decr hi;
      stuck := 0
    end
    else begin
      let lo = ref !hi in
      while !lo > 0 && not (subdiag_negligible h !lo) do
        decr lo
      done;
      if !hi - !lo = 1 then begin
        (* closed-form 2x2 deflation *)
        let l1, l2 =
          two_by_two
            (Cmatrix.get h !lo !lo)
            (Cmatrix.get h !lo !hi)
            (Cmatrix.get h !hi !lo)
            (Cmatrix.get h !hi !hi)
        in
        evals.(!hi) <- l1;
        evals.(!lo) <- l2;
        hi := !lo - 1;
        stuck := 0
      end
      else begin
        incr iters;
        incr stuck;
        if !iters > max_iter then
          failwith "Eig.eigenvalues: QR iteration did not converge";
        let mu =
          if !stuck mod 12 = 0 then
            (* exceptional shift to break a rare limit cycle *)
            Cx.of_float
              (Cx.norm (Cmatrix.get h !hi (!hi - 1))
              +. Cx.norm (Cmatrix.get h (!hi - 1) (!hi - 2)))
          else
            wilkinson
              (Cmatrix.get h (!hi - 1) (!hi - 1))
              (Cmatrix.get h (!hi - 1) !hi)
              (Cmatrix.get h !hi (!hi - 1))
              (Cmatrix.get h !hi !hi)
        in
        qr_step h !lo !hi mu
      end
    end
  done;
  evals

let eigenvalues ?max_iter a = eigenvalues_cx ?max_iter (Cmatrix.of_matrix a)
