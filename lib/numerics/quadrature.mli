(** Numerical integration of sampled and functional data.

    RMS current extraction (Figure 12 of the paper) integrates the
    square of a sampled wire current over one oscillation period. *)

val trapezoid_sampled : xs:float array -> ys:float array -> float
(** Trapezoid rule over samples; [xs] strictly increasing, same length
    as [ys], at least two points. *)

val trapezoid : ?n:int -> (float -> float) -> float -> float -> float
(** [trapezoid f a b] with [n] (default 256) uniform panels. *)

val simpson : ?n:int -> (float -> float) -> float -> float -> float
(** Composite Simpson; [n] (default 256) is rounded up to even. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> (float -> float) -> float -> float -> float
(** Adaptive Simpson with absolute tolerance [tol] (default 1e-10). *)
