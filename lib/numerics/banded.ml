(* Band storage follows LAPACK's general-band convention: column j is
   contiguous, entry (i,j) lives at offset [kl + ku + i - j], and the
   top [kl] rows of each column are workspace so that the fill-in
   created by row pivoting (U gains up to kl extra superdiagonals)
   stays inside the array. *)

type storage = {
  n : int;
  skl : int;
  sku : int;
  ldab : int; (* 2*skl + sku + 1 *)
  ab : float array; (* column-major, n columns of height ldab *)
}

type t = {
  fn : int;
  fkl : int;
  fku : int;
  fldab : int;
  fab : float array; (* factorised bands: L multipliers + widened U *)
  ipiv : int array; (* row interchanged with row k at step k *)
}

exception Singular

let create_storage ~n ~kl ~ku =
  if n <= 0 then invalid_arg "Banded.create_storage: n <= 0";
  if kl < 0 || ku < 0 then invalid_arg "Banded.create_storage: negative bandwidth";
  if kl >= n || ku >= n then invalid_arg "Banded.create_storage: bandwidth >= n";
  let ldab = (2 * kl) + ku + 1 in
  { n; skl = kl; sku = ku; ldab; ab = Array.make (n * ldab) 0.0 }

let storage_n s = s.n
let storage_kl s = s.skl
let storage_ku s = s.sku

let idx s i j = (j * s.ldab) + s.skl + s.sku + i - j

let check_bounds s i j =
  if i < 0 || i >= s.n || j < 0 || j >= s.n then
    invalid_arg
      (Printf.sprintf "Banded: index (%d,%d) out of %dx%d" i j s.n s.n)

let in_band s i j = i - j <= s.skl && j - i <= s.sku

let get s i j =
  check_bounds s i j;
  if in_band s i j then s.ab.(idx s i j) else 0.0

let check_band s i j =
  check_bounds s i j;
  if not (in_band s i j) then
    invalid_arg
      (Printf.sprintf "Banded: (%d,%d) outside band (kl=%d, ku=%d)" i j s.skl
         s.sku)

let set s i j v =
  check_band s i j;
  s.ab.(idx s i j) <- v

let add_to s i j v =
  check_band s i j;
  let k = idx s i j in
  s.ab.(k) <- s.ab.(k) +. v

let to_dense s =
  let m = Matrix.create s.n s.n in
  for j = 0 to s.n - 1 do
    for i = Int.max 0 (j - s.sku) to Int.min (s.n - 1) (j + s.skl) do
      Matrix.set m i j s.ab.(idx s i j)
    done
  done;
  m

let bandwidth m =
  let n = Matrix.rows m in
  if Matrix.cols m <> n then invalid_arg "Banded.bandwidth: matrix not square";
  let kl = ref 0 and ku = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Matrix.get m i j <> 0.0 then begin
        if i - j > !kl then kl := i - j;
        if j - i > !ku then ku := j - i
      end
    done
  done;
  (!kl, !ku)

let of_matrix ?kl ?ku m =
  let n = Matrix.rows m in
  if Matrix.cols m <> n then invalid_arg "Banded.of_matrix: matrix not square";
  let dkl, dku = bandwidth m in
  let kl = match kl with Some k -> k | None -> dkl in
  let ku = match ku with Some k -> k | None -> dku in
  if kl < dkl || ku < dku then
    invalid_arg "Banded.of_matrix: nonzero outside the requested band";
  let s = create_storage ~n ~kl ~ku in
  for j = 0 to n - 1 do
    for i = Int.max 0 (j - ku) to Int.min (n - 1) (j + kl) do
      s.ab.(idx s i j) <- Matrix.get m i j
    done
  done;
  s

(* Unblocked dgbtf2: at column j the pivot is searched over the kl
   rows below the diagonal; a swap moves a row whose entries extend up
   to column j + kl + ku, which is why U is stored kl wider than the
   assembled band. *)
let m_decompose = Rlc_instr.Metrics.counter "banded.decompose"
let m_solve = Rlc_instr.Metrics.counter "banded.solve"

(* amax over the band array; the workspace rows are zero before
   factorisation and hold L multipliers (|m| <= 1 under partial
   pivoting) after, so the same sweep serves both probe sides *)
let band_amax ab =
  let m = ref 0.0 in
  Array.iter
    (fun v ->
      let v = Float.abs v in
      if v > !m then m := v)
    ab;
  !m

let decompose ?(pivot_tol = 1e-300) s =
  Rlc_instr.Metrics.incr m_decompose;
  let { n; skl = kl; sku = ku; ldab; ab } = s in
  let at i j = (j * ldab) + kl + ku + i - j in
  let probing = Rlc_instr.Metrics.recording () in
  let amax = if probing then band_amax ab else 0.0 in
  let ipiv = Array.make n 0 in
  let ju = ref 0 in
  for j = 0 to n - 1 do
    let km = Int.min kl (n - 1 - j) in
    let jp = ref 0 in
    let pv = ref (Float.abs ab.(at j j)) in
    for i = 1 to km do
      let v = Float.abs ab.(at (j + i) j) in
      if v > !pv then begin
        pv := v;
        jp := i
      end
    done;
    if !pv <= pivot_tol then begin
      Rlc_instr.Health.failure ~kind:"banded" ~reason:"singular pivot";
      raise Singular
    end;
    ipiv.(j) <- j + !jp;
    ju := Int.max !ju (Int.min (j + ku + !jp) (n - 1));
    if !jp <> 0 then begin
      let r = j + !jp in
      for c = j to !ju do
        let a = at j c and b = at r c in
        let tmp = ab.(a) in
        ab.(a) <- ab.(b);
        ab.(b) <- tmp
      done
    end;
    if km > 0 then begin
      let pivot = ab.(at j j) in
      for i = 1 to km do
        ab.(at (j + i) j) <- ab.(at (j + i) j) /. pivot
      done;
      for c = j + 1 to !ju do
        let ujc = ab.(at j c) in
        if ujc <> 0.0 then
          for i = 1 to km do
            ab.(at (j + i) c) <- ab.(at (j + i) c) -. (ab.(at (j + i) j) *. ujc)
          done
      done
    end
  done;
  if probing then begin
    let umax = band_amax ab in
    let dmin = ref infinity and dmax = ref 0.0 in
    for j = 0 to n - 1 do
      let d = Float.abs ab.(at j j) in
      if d < !dmin then dmin := d;
      if d > !dmax then dmax := d
    done;
    let growth = if amax > 0.0 then umax /. amax else 1.0 in
    let rcond = if !dmax > 0.0 then !dmin /. !dmax else 0.0 in
    ignore (Rlc_instr.Health.observe ~kind:"banded" ~growth ~rcond ())
  end;
  { fn = n; fkl = kl; fku = ku; fldab = ldab; fab = ab; ipiv }

let size f = f.fn
let kl f = f.fkl
let ku f = f.fku

let solve_into f ~b ~x =
  Rlc_instr.Metrics.incr m_solve;
  let n = f.fn in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Banded.solve_into: size mismatch";
  if x != b then Array.blit b 0 x 0 n;
  let { fkl = kl; fku = ku; fldab = ldab; fab = ab; ipiv; _ } = f in
  let at i j = (j * ldab) + kl + ku + i - j in
  (* L y = P b, applying the interchanges in factorisation order *)
  for j = 0 to n - 1 do
    let p = ipiv.(j) in
    if p <> j then begin
      let tmp = x.(j) in
      x.(j) <- x.(p);
      x.(p) <- tmp
    end;
    let xj = x.(j) in
    if xj <> 0.0 then begin
      let km = Int.min kl (n - 1 - j) in
      for i = 1 to km do
        x.(j + i) <- x.(j + i) -. (ab.(at (j + i) j) *. xj)
      done
    end
  done;
  (* U x = y; U has kl + ku superdiagonals after pivoting *)
  for j = n - 1 downto 0 do
    let xj = x.(j) /. ab.(at j j) in
    x.(j) <- xj;
    if xj <> 0.0 then begin
      let lm = Int.min (kl + ku) j in
      for i = 1 to lm do
        x.(j - i) <- x.(j - i) -. (ab.(at (j - i) j) *. xj)
      done
    end
  done

let solve f b =
  let x = Array.make f.fn 0.0 in
  solve_into f ~b ~x;
  x
