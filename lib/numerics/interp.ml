let check_grid xs ys =
  let n = Array.length xs in
  if n = 0 || Array.length ys <> n then
    invalid_arg "Interp: arrays empty or of different lengths";
  for i = 1 to n - 1 do
    if xs.(i) <= xs.(i - 1) then
      invalid_arg "Interp: xs not strictly increasing"
  done

let bracket_index xs x =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Interp.bracket_index: need >= 2 points";
  if x <= xs.(0) then 0
  else if x >= xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let linear ~xs ~ys x =
  check_grid xs ys;
  let n = Array.length xs in
  if n = 1 then ys.(0)
  else if x <= xs.(0) then ys.(0)
  else if x >= xs.(n - 1) then ys.(n - 1)
  else begin
    let i = bracket_index xs x in
    let t = (x -. xs.(i)) /. (xs.(i + 1) -. xs.(i)) in
    ((1.0 -. t) *. ys.(i)) +. (t *. ys.(i + 1))
  end

let crossing ~x0 ~y0 ~x1 ~y1 ~level =
  if (y0 -. level) *. (y1 -. level) > 0.0 then
    invalid_arg "Interp.crossing: segment does not straddle level";
  if y1 = y0 then x0
  else x0 +. ((level -. y0) /. (y1 -. y0) *. (x1 -. x0))
