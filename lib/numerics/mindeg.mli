(** Approximate minimum-degree (AMD-style) fill-reducing ordering.

    Reverse Cuthill-McKee ({!Rcm}) minimises *bandwidth*, which is the
    right objective for the banded kernel on chain-structured systems
    but the wrong one for general sparse LU on 2-D meshes, where the
    band grows like sqrt(n) and the factor fills it completely.  This
    module orders for *fill*: vertices are eliminated smallest
    (approximate) degree first on a quotient graph, the standard greedy
    heuristic behind AMD/COLAMD.  The sparse backend of {!Solver} uses
    it both for the ordering itself and for the fill/flop estimates
    the [Auto] cost model compares against the banded prediction.

    The ordering is deterministic: ties in degree always break towards
    the lowest vertex index, so a shared {!Solver.plan} is a pure
    function of the stamped structure — the property the
    domain-parallel consumers rely on for bit-identical runs. *)

type result = {
  perm : int array;
      (** [perm.(u)] is the position of vertex [u] in the elimination
          order (same convention as {!Rcm.permutation}). *)
  fill : float;
      (** Estimated nonzeros of the Cholesky-shaped factor L (diagonal
          included) under [perm]; LU on a structurally symmetric
          pattern costs about twice this. *)
  flops : float;
      (** Estimated [sum over pivots of |Lp|^2] — the dominant term of
          the factorisation work under [perm]. *)
}

val order : int list array -> result
(** [order adj] takes an undirected adjacency (vertex [u]'s neighbour
    list at index [u]; self-loops ignored, symmetry assumed — the same
    shape {!Rcm.permutation} takes) and returns the min-degree
    elimination order with its fill/flop estimates.  Raises
    [Invalid_argument] on an empty adjacency. *)
