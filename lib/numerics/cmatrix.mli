(** Dense complex matrices (row-major), the complex twin of {!Matrix}.

    Sized for the model-order-reduction work: the reduced systems are
    tiny (order 2-20) but the AC engine also factors full MNA matrices
    of a few thousand unknowns, so the layout mirrors {!Matrix}'s flat
    row-major array rather than anything fancier. *)

type t

val create : int -> int -> t
(** Zero matrix.  Raises [Invalid_argument] on a non-positive
    dimension. *)

val init : int -> int -> (int -> int -> Cx.t) -> t
(** [init rows cols f] fills entry (i,j) with [f i j]. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val add_to : t -> int -> int -> Cx.t -> unit
(** All three raise [Invalid_argument] out of bounds. *)

val copy : t -> t

val of_matrix : Matrix.t -> t
(** Real matrix lifted to complex. *)

val transpose : t -> t

val mul_vec : t -> Cx.t array -> Cx.t array
(** Raises [Invalid_argument] on a shape mismatch. *)

val max_norm : t -> float
(** Largest entry norm (0 for the zero matrix). *)

val pp : Format.formatter -> t -> unit
