exception No_bracket
exception No_convergence of string

let default_tol = 1e-12

module M = Rlc_instr.Metrics

let m_calls = M.counter "roots.calls"
let m_iterations = M.counter "roots.iterations"
let m_residual = M.hist "roots.residual"

let check_bracket name fa fb =
  if fa *. fb > 0.0 then
    raise No_bracket
  else if Float.is_nan fa || Float.is_nan fb then
    raise (No_convergence (name ^ ": NaN at bracket endpoint"))

let bisect ?(tol = default_tol) ?(max_iter = 200) f a b =
  M.incr m_calls;
  let fa = f a and fb = f b in
  check_bracket "bisect" fa fb;
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else begin
    let lo = ref a and hi = ref b and flo = ref fa in
    let result = ref nan in
    let iter = ref 0 in
    while Float.is_nan !result do
      incr iter;
      if !iter > max_iter then raise (No_convergence "bisect");
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      M.incr m_iterations;
      M.observe m_residual (Float.abs fmid);
      if fmid = 0.0 || (!hi -. !lo) /. 2.0 < tol *. (1.0 +. Float.abs mid)
      then result := mid
      else if !flo *. fmid < 0.0 then hi := mid
      else begin
        lo := mid;
        flo := fmid
      end
    done;
    !result
  end

(* Brent's method, following the classic Numerical Recipes formulation. *)
let brent ?(tol = default_tol) ?(max_iter = 200) f a b =
  M.incr m_calls;
  let fa = f a and fb = f b in
  check_bracket "brent" fa fb;
  let a = ref a and b = ref b and c = ref a in
  let fa = ref fa and fb = ref fb and fc = ref fa in
  let d = ref 0.0 and e = ref 0.0 in
  let result = ref nan in
  let iter = ref 0 in
  while Float.is_nan !result do
    incr iter;
    if !iter > max_iter then raise (No_convergence "brent");
    M.incr m_iterations;
    M.observe m_residual (Float.abs !fb);
    if (!fb > 0.0 && !fc > 0.0) || (!fb < 0.0 && !fc < 0.0) then begin
      c := !a;
      fc := !fa;
      d := !b -. !a;
      e := !d
    end;
    if Float.abs !fc < Float.abs !fb then begin
      a := !b;
      b := !c;
      c := !a;
      fa := !fb;
      fb := !fc;
      fc := !fa
    end;
    let tol1 = (2.0 *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
    let xm = 0.5 *. (!c -. !b) in
    if Float.abs xm <= tol1 || !fb = 0.0 then result := !b
    else begin
      if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
        let s = !fb /. !fa in
        let p, q =
          if !a = !c then
            let p = 2.0 *. xm *. s in
            let q = 1.0 -. s in
            (p, q)
          else begin
            let q = !fa /. !fc and r = !fb /. !fc in
            let p =
              s *. ((2.0 *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.0)))
            in
            let q = (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0) in
            (p, q)
          end
        in
        let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
        let min1 = (3.0 *. xm *. q) -. Float.abs (tol1 *. q) in
        let min2 = Float.abs (!e *. q) in
        if 2.0 *. p < Float.min min1 min2 then begin
          e := !d;
          d := p /. q
        end
        else begin
          d := xm;
          e := !d
        end
      end
      else begin
        d := xm;
        e := !d
      end;
      a := !b;
      fa := !fb;
      if Float.abs !d > tol1 then b := !b +. !d
      else b := !b +. Float.copy_sign tol1 xm;
      fb := f !b
    end
  done;
  !result

let newton ?(tol = default_tol) ?(max_iter = 50) ~f ~df x0 =
  M.incr m_calls;
  let rec go x iter =
    if iter > max_iter then raise (No_convergence "newton");
    M.incr m_iterations;
    let fx = f x in
    M.observe m_residual (Float.abs fx);
    let dfx = df x in
    if Float.abs dfx < 1e-300 then raise (No_convergence "newton: flat slope");
    let step = fx /. dfx in
    (* halve the step until the residual shrinks (simple damping) *)
    let rec damp s tries =
      let x' = x -. s in
      if tries = 0 then x'
      else if Float.abs (f x') <= Float.abs fx || Float.is_nan (f x') then
        if Float.is_nan (f x') then damp (s /. 2.0) (tries - 1) else x'
      else damp (s /. 2.0) (tries - 1)
    in
    let x' = damp step 8 in
    if Float.abs (x' -. x) <= tol *. (1.0 +. Float.abs x') then x'
    else go x' (iter + 1)
  in
  go x0 0

let newton_bracketed ?(tol = default_tol) ?(max_iter = 100) ~f ~df lo hi =
  M.incr m_calls;
  let flo = f lo and fhi = f hi in
  check_bracket "newton_bracketed" flo fhi;
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else begin
    (* Keep (lo, hi) a valid bracket; try Newton from the midpoint and
       fall back to bisection when the step escapes. *)
    (* tolerance is relative to the PROBLEM scale (initial bracket and
       endpoint magnitudes), not to 1.0 -- the delay solver works in
       seconds where roots are ~1e-10 *)
    let scale =
      Float.max (Float.abs (hi -. lo))
        (Float.max (Float.abs lo) (Float.abs hi))
    in
    let step_tol = tol *. Float.max scale Float.min_float in
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let x = ref (0.5 *. (!lo +. !hi)) in
    let result = ref nan in
    let iter = ref 0 in
    while Float.is_nan !result do
      incr iter;
      if !iter > max_iter then raise (No_convergence "newton_bracketed");
      let fx = f !x in
      M.incr m_iterations;
      M.observe m_residual (Float.abs fx);
      if fx = 0.0 then result := !x
      else begin
        if !flo *. fx < 0.0 then hi := !x
        else begin
          lo := !x;
          flo := fx
        end;
        let dfx = df !x in
        let x' =
          if Float.abs dfx < 1e-300 then 0.5 *. (!lo +. !hi)
          else
            let cand = !x -. (fx /. dfx) in
            if cand <= !lo || cand >= !hi then 0.5 *. (!lo +. !hi) else cand
        in
        if Float.abs (x' -. !x) <= step_tol || !hi -. !lo <= step_tol then
          result := x'
        else x := x'
      end
    done;
    !result
  end

let bracket_first ?(grow = 1.3) ?(max_steps = 500) f ~t0 ~dt =
  if dt <= 0.0 then invalid_arg "Roots.bracket_first: dt must be positive";
  let rec go t ft step n =
    if n > max_steps then raise No_bracket;
    let t' = t +. step in
    let ft' = f t' in
    if ft *. ft' <= 0.0 then (t, t') else go t' ft' (step *. grow) (n + 1)
  in
  let ft0 = f t0 in
  if ft0 = 0.0 then (t0, t0) else go t0 ft0 dt 0
