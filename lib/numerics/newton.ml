type result = {
  x : float array;
  residual_norm : float;
  iterations : int;
  converged : bool;
}

let norm v = Float.sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v)

module M = Rlc_instr.Metrics

let m_calls = M.counter "newton.calls"
let m_iterations = M.counter "newton.iterations"
let m_residual = M.hist "newton.residual"
let m_diverged = M.counter "newton.diverged"

let clamp ?lower ?upper x =
  let x = Array.copy x in
  (match lower with
  | None -> ()
  | Some lo ->
      Array.iteri (fun i v -> if x.(i) < v then x.(i) <- v) lo);
  (match upper with
  | None -> ()
  | Some hi ->
      Array.iteri (fun i v -> if x.(i) > v then x.(i) <- v) hi);
  x

let solve_ctx ?(max_iter = 60) ?(tol = 1e-10) ?jacobian ?lower ?upper ~ctx
    ~f:fc ~x0 () =
  let f x = fc ctx x in
  let jac =
    match jacobian with
    | Some j -> fun x -> j ctx x
    | None -> fun x -> Fdiff.jacobian f x
  in
  let x = ref (clamp ?lower ?upper x0) in
  let fx = ref (f !x) in
  let r0 = norm !fx in
  let threshold = Float.max (tol *. r0) tol in
  M.incr m_calls;
  let iter = ref 0 in
  let stalled = ref false in
  while (not !stalled) && norm !fx > threshold && !iter < max_iter do
    incr iter;
    M.incr m_iterations;
    M.observe m_residual (norm !fx);
    let step =
      try Some (Lu.solve_matrix (jac !x) (Array.map (fun v -> -.v) !fx))
      with Lu.Singular -> None
    in
    match step with
    | None -> stalled := true
    | Some dx ->
        (* backtracking line search on ||f||^2 *)
        let base = norm !fx in
        let rec search alpha tries =
          if tries = 0 then None
          else begin
            let cand =
              clamp ?lower ?upper
                (Array.mapi (fun i v -> v +. (alpha *. dx.(i))) !x)
            in
            let fc = f cand in
            let n = norm fc in
            if Float.is_nan n || n >= base then search (alpha /. 2.0) (tries - 1)
            else Some (cand, fc)
          end
        in
        (match search 1.0 12 with
        | None -> stalled := true
        | Some (x', fx') ->
            x := x';
            fx := fx')
  done;
  let r = norm !fx in
  let converged = r <= threshold in
  if not converged then begin
    M.incr m_diverged;
    if Rlc_instr.Journal.capturing () then
      Rlc_instr.Journal.record "newton.divergence"
        [
          ("iterations", Rlc_instr.Journal.Int !iter);
          ("residual", Rlc_instr.Journal.Num r);
          ( "detail",
            Rlc_instr.Journal.Str
              (if !stalled then "stalled (singular jacobian or dead line \
                                 search)"
               else "iteration budget exhausted") );
        ];
    Rlc_instr.Health.degraded ~kind:"newton"
      ~reason:(if !stalled then "stalled" else "max iterations")
  end;
  { x = !x; residual_norm = r; iterations = !iter; converged }

let solve ?max_iter ?tol ?jacobian ?lower ?upper ~f ~x0 () =
  (* legacy closure shape: thread a unit context through the one real
     implementation — same float operations in the same order *)
  let jacobian = Option.map (fun j () x -> j x) jacobian in
  solve_ctx ?max_iter ?tol ?jacobian ?lower ?upper ~ctx:() ~f:(fun () x -> f x)
    ~x0 ()
