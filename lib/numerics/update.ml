(* Sherman-Morrison-Woodbury rank-k updates over Solver factors.

   The identity used throughout (D = diag scale, Z = A^-1 U):

     (A + U D V^T) x = b
     x = x0 - Z D t,   (I + V^T Z D) t = V^T x0,   x0 = A^-1 b

   so the k x k capacitance matrix is S_ij = delta_ij + scale_j
   (v_i^T z_j) and one updated solve costs k dot products, one tiny
   dense solve and one axpy sweep on top of the base solve. *)

module M = Rlc_instr.Metrics

let m_make = M.counter "update.make"
let m_apply = M.counter "update.apply"
let m_rank = M.gauge "update.rank"
let m_cond = M.gauge "update.condition"

(* distribution of capacitance-matrix condition estimates — the gauge
   above only keeps the latest, which hides intermittent spikes *)
let m_cond_h = M.hist "update.condition_est"

exception Singular

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

(* 1-norm (max column sum of moduli) of a k x k matrix given as an
   entry accessor — exact, the matrices here are tiny. *)
let one_norm k entry =
  let worst = ref 0.0 in
  for j = 0 to k - 1 do
    let col = ref 0.0 in
    for i = 0 to k - 1 do
      col := !col +. entry i j
    done;
    if !col > !worst then worst := !col
  done;
  !worst

type t = {
  rank : int;
  plan : Solver.plan;
  factor : Solver.factor;
  z : float array array;
  v : float array array;
  scale : float array;
  s_lu : Lu.t option;  (* None at rank 0 *)
  condition : float;
}

let check_columns ~what ~n ~k cols =
  if Array.length cols <> k then
    invalid_arg (Printf.sprintf "Update.make: %s has %d columns, expected %d"
                   what (Array.length cols) k);
  Array.iter
    (fun c ->
      if Array.length c <> n then
        invalid_arg (Printf.sprintf "Update.make: %s column length %d <> n=%d"
                       what (Array.length c) n))
    cols

let make ?z ?scale plan factor ~u ~v =
  let n = plan.Solver.n in
  let k = Array.length u in
  check_columns ~what:"u" ~n ~k u;
  check_columns ~what:"v" ~n ~k v;
  let scale =
    match scale with
    | None -> Array.make k 1.0
    | Some s ->
        if Array.length s <> k then
          invalid_arg "Update.make: scale length mismatch";
        s
  in
  let z =
    match z with
    | Some z ->
        check_columns ~what:"z" ~n ~k z;
        z
    | None -> Array.map (fun ui -> Solver.solve plan factor ui) u
  in
  let s_lu, condition =
    if k = 0 then (None, 1.0)
    else begin
      let s = Matrix.create k k in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          let vij = scale.(j) *. dot v.(i) z.(j) in
          Matrix.set s i j (if i = j then 1.0 +. vij else vij)
        done
      done;
      let lu =
        try Lu.decompose s
        with Lu.Singular ->
          Rlc_instr.Health.failure ~kind:"smw"
            ~reason:"singular capacitance matrix";
          raise Singular
      in
      let s_inv = Lu.inverse lu in
      let norm m = one_norm k (fun i j -> Float.abs (Matrix.get m i j)) in
      (Some lu, norm s *. norm s_inv)
    end
  in
  if M.recording () then begin
    M.incr m_make;
    M.set m_rank (float_of_int k);
    M.set m_cond (Float.min condition 1e18);
    if k > 0 then M.observe m_cond_h condition
  end;
  { rank = k; plan; factor; z; v; scale; s_lu; condition }

let rank t = t.rank
let condition t = t.condition

let apply t ~x0 ~x =
  let n = t.plan.Solver.n in
  if Array.length x0 <> n || Array.length x <> n then
    invalid_arg "Update.apply: vector length mismatch";
  if M.recording () then M.incr m_apply;
  match t.s_lu with
  | None -> if x != x0 then Array.blit x0 0 x 0 n
  | Some lu ->
      (* read all of x0 (the dot products) before any write to x —
         the two arrays may alias *)
      let rhs = Array.map (fun vi -> dot vi x0) t.v in
      let w = Lu.solve lu rhs in
      for r = 0 to n - 1 do
        let acc = ref 0.0 in
        for i = 0 to t.rank - 1 do
          acc := !acc +. (t.scale.(i) *. w.(i) *. t.z.(i).(r))
        done;
        x.(r) <- x0.(r) -. !acc
      done

let solve t b =
  let x0 = Solver.solve t.plan t.factor b in
  apply t ~x0 ~x:x0;
  x0

(* Complex twin — same algebra over Cx (plain transpose, no
   conjugation: Woodbury is an algebraic identity). *)

open Cx

let cdot a b =
  let acc = ref Cx.zero in
  for i = 0 to Array.length a - 1 do
    acc := !acc +: (a.(i) *: b.(i))
  done;
  !acc

type ct = {
  crank_ : int;
  cplan : Solver.plan;
  cfactor_ : Solver.cfactor;
  cz : Cx.t array array;
  cv : Cx.t array array;
  cscale : Cx.t array;
  cs_lu : Clu.t option;
  ccondition_ : float;
}

let ccheck_columns ~what ~n ~k cols =
  if Array.length cols <> k then
    invalid_arg (Printf.sprintf "Update.cmake: %s has %d columns, expected %d"
                   what (Array.length cols) k);
  Array.iter
    (fun c ->
      if Array.length c <> n then
        invalid_arg (Printf.sprintf "Update.cmake: %s column length %d <> n=%d"
                       what (Array.length c) n))
    cols

let cmake ?z ?scale plan factor ~u ~v =
  let n = plan.Solver.n in
  let k = Array.length u in
  ccheck_columns ~what:"u" ~n ~k u;
  ccheck_columns ~what:"v" ~n ~k v;
  let scale =
    match scale with
    | None -> Array.make k Cx.one
    | Some s ->
        if Array.length s <> k then
          invalid_arg "Update.cmake: scale length mismatch";
        s
  in
  let z =
    match z with
    | Some z ->
        ccheck_columns ~what:"z" ~n ~k z;
        z
    | None -> Array.map (fun ui -> Solver.csolve plan factor ui) u
  in
  let cs_lu, condition =
    if k = 0 then (None, 1.0)
    else begin
      let s = Cmatrix.create k k in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          let vij = scale.(j) *: cdot v.(i) z.(j) in
          Cmatrix.set s i j (if i = j then Cx.one +: vij else vij)
        done
      done;
      let lu =
        try Clu.decompose s
        with Clu.Singular ->
          Rlc_instr.Health.failure ~kind:"smw"
            ~reason:"singular capacitance matrix";
          raise Singular
      in
      (* Clu has no inverse: recover S^-1 column by column — S is
         k x k with k a handful. *)
      let inv_cols =
        Array.init k (fun j ->
            let e = Array.make k Cx.zero in
            e.(j) <- Cx.one;
            Clu.solve lu e)
      in
      let norm_s = one_norm k (fun i j -> Cx.norm (Cmatrix.get s i j)) in
      let norm_inv = one_norm k (fun i j -> Cx.norm inv_cols.(j).(i)) in
      (Some lu, norm_s *. norm_inv)
    end
  in
  if M.recording () then begin
    M.incr m_make;
    M.set m_rank (float_of_int k);
    M.set m_cond (Float.min condition 1e18);
    if k > 0 then M.observe m_cond_h condition
  end;
  { crank_ = k; cplan = plan; cfactor_ = factor; cz = z; cv = v;
    cscale = scale; cs_lu; ccondition_ = condition }

let crank t = t.crank_
let ccondition t = t.ccondition_

let capply t ~x0 ~x =
  let n = t.cplan.Solver.n in
  if Array.length x0 <> n || Array.length x <> n then
    invalid_arg "Update.capply: vector length mismatch";
  if M.recording () then M.incr m_apply;
  match t.cs_lu with
  | None -> if x != x0 then Array.blit x0 0 x 0 n
  | Some lu ->
      let rhs = Array.map (fun vi -> cdot vi x0) t.cv in
      let w = Clu.solve lu rhs in
      for r = 0 to n - 1 do
        let acc = ref Cx.zero in
        for i = 0 to t.crank_ - 1 do
          acc := !acc +: (t.cscale.(i) *: w.(i) *: t.cz.(i).(r))
        done;
        x.(r) <- x0.(r) -: !acc
      done

let csolve t b =
  let x0 = Solver.csolve t.cplan t.cfactor_ b in
  capply t ~x0 ~x:x0;
  x0
