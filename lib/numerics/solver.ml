module M = Rlc_instr.Metrics

let m_plan_banded = M.counter "solver.plan.banded"
let m_plan_dense = M.counter "solver.plan.dense"
let m_plan_sparse = M.counter "solver.plan.sparse"
let m_bandwidth = M.gauge "solver.plan.bandwidth"
let m_n = M.gauge "solver.plan.n"
let m_sparse_flops = M.gauge "solver.plan.sparse_flops"
let m_factor = M.counter "solver.factor"
let m_factor_s = M.hist "solver.factor_s"
let m_solve = M.counter "solver.solve"
let m_solve_s = M.hist "solver.solve_s"
let m_cfactor = M.counter "solver.cfactor"
let m_cfactor_s = M.hist "solver.cfactor_s"
let m_csolve = M.counter "solver.csolve"
let m_csolve_s = M.hist "solver.csolve_s"
let m_analyze = M.counter "solver.sparse.analyze"
let m_refactor = M.counter "solver.sparse.refactor"
let m_canalyze = M.counter "solver.sparse.canalyze"
let m_crefactor = M.counter "solver.sparse.crefactor"
let m_repivot = M.counter "solver.sparse.repivot"
let m_lu_nnz = M.gauge "solver.sparse.lu_nnz"

type backend = Auto | Dense | Banded | Sparse
type choice = Dense_lu | Banded_lu | Sparse_lu

type plan = {
  n : int;
  perm : int array;
  kl : int;
  ku : int;
  use_banded : bool;
  choice : choice;
  sparse_flops : float;
}

(* Banded-vs-dense: the band must occupy at most a third of the matrix
   and the system must be big enough for the bookkeeping to pay off;
   RC/RLC ladders have kl = ku of 2-3 independent of length. *)
let banded_pays ~n ~kl ~ku = n >= 12 && 3 * (kl + ku + 1) <= n

(* A band this narrow is chain structure: the banded kernel is within
   a small constant of optimal and the min-degree analysis would cost
   more than it could save.  Everything the repository built before
   the sparse backend (ladders, buses, small meshes) lands here, which
   is what keeps those plans — permutation, backend, results —
   bit-identical to the pre-sparse ones. *)
let narrow_band ~kl ~ku = kl + ku <= 16

(* One sparse "flop" pays for index chasing a dense flop does not; the
   factor was calibrated on the RC-grid matrix of BENCH_sparse.json.
   Measured on those grids, a fresh sparse factor crosses the banded
   kernel near a 48x48 mesh but a symbolic-reusing refactor — what AC
   sweeps and transient restamps actually pay per point — already wins
   from 24x24, so the penalty is set to put the crossover there: 24x24
   and larger meshes route to sparse, 16x16 stays banded. *)
let sparse_flop_penalty = 3.0

let bandwidths_under perm adj =
  let kl = ref 0 and ku = ref 0 in
  Array.iteri
    (fun i neighbours ->
      List.iter
        (fun j ->
          let d = perm.(i) - perm.(j) in
          if d > !kl then kl := d;
          if -d > !ku then ku := -d)
        neighbours)
    adj;
  (!kl, !ku)

let plan ?(backend = Auto) adj =
  let n = Array.length adj in
  if n = 0 then invalid_arg "Solver.plan: empty adjacency";
  let rcm_perm = lazy (Rcm.permutation adj) in
  let rcm_widths = lazy (bandwidths_under (Lazy.force rcm_perm) adj) in
  let mindeg = lazy (Mindeg.order adj) in
  (* LU on a structurally symmetric pattern does about twice the
     Cholesky-shaped work the estimator counts, plus a traversal term
     per stored entry *)
  let mindeg_flops () =
    let md = Lazy.force mindeg in
    (2.0 *. md.Mindeg.flops) +. (8.0 *. md.Mindeg.fill)
  in
  let choice =
    match backend with
    | Dense -> Dense_lu
    | Banded -> Banded_lu
    | Sparse -> Sparse_lu
    | Auto ->
        let kl, ku = Lazy.force rcm_widths in
        if narrow_band ~kl ~ku then
          if banded_pays ~n ~kl ~ku then Banded_lu else Dense_lu
        else begin
          let fn = float_of_int n in
          let dense_flops = fn *. fn *. fn /. 3.0 in
          let banded_flops =
            fn *. float_of_int kl *. float_of_int (kl + ku + 1)
          in
          let sparse_cost = sparse_flop_penalty *. mindeg_flops () in
          if sparse_cost < banded_flops && sparse_cost < dense_flops then
            Sparse_lu
          else if banded_pays ~n ~kl ~ku then Banded_lu
          else Dense_lu
        end
  in
  let perm, sparse_flops =
    match choice with
    | Sparse_lu -> ((Lazy.force mindeg).Mindeg.perm, mindeg_flops ())
    | Dense_lu | Banded_lu -> (Lazy.force rcm_perm, 0.0)
  in
  let kl, ku =
    match choice with
    | Sparse_lu -> bandwidths_under perm adj
    | Dense_lu | Banded_lu -> Lazy.force rcm_widths
  in
  M.incr
    (match choice with
    | Banded_lu -> m_plan_banded
    | Dense_lu -> m_plan_dense
    | Sparse_lu -> m_plan_sparse);
  M.set m_bandwidth (Float.of_int (kl + ku + 1));
  M.set m_n (Float.of_int n);
  if choice = Sparse_lu then M.set m_sparse_flops sparse_flops;
  { n; perm; kl; ku; use_banded = choice = Banded_lu; choice; sparse_flops }

type factor =
  | F_dense of Lu.t
  | F_banded of Banded.t
  | F_sparse of Sparse.t

type symbolic = Sparse.symbolic

let symbolic_of = function
  | F_sparse sf -> Some (Sparse.symbolic sf)
  | F_dense _ | F_banded _ -> None

let sparse_csc p ~fill =
  Sparse.of_fill ~n:p.n (fun add ->
      fill (fun i j v -> add p.perm.(i) p.perm.(j) v))

(* The repivot fallback is the serving layer's main health signal:
   journal it (with the plan size, under the current provenance) and
   count the solve as degraded — the fresh analysis that follows
   reports its own classification. *)
let note_fallback ~kind n =
  M.incr m_repivot;
  if Rlc_instr.Journal.capturing () then
    Rlc_instr.Journal.record "solver.fallback"
      [
        ("kind", Rlc_instr.Journal.Str kind);
        ("reason", Rlc_instr.Journal.Str "repivot");
        ("n", Rlc_instr.Journal.Int n);
      ];
  Rlc_instr.Health.degraded ~kind ~reason:"repivot"

let factor_with ?symbolic p ~fill =
  M.incr m_factor;
  M.timed m_factor_s (fun () ->
      match p.choice with
      | Banded_lu ->
          let s = Banded.create_storage ~n:p.n ~kl:p.kl ~ku:p.ku in
          fill (fun i j v -> Banded.add_to s p.perm.(i) p.perm.(j) v);
          F_banded (Banded.decompose s)
      | Dense_lu ->
          let a = Matrix.create p.n p.n in
          fill (fun i j v -> Matrix.add_to a p.perm.(i) p.perm.(j) v);
          F_dense (Lu.decompose a)
      | Sparse_lu ->
          let a = sparse_csc p ~fill in
          let sf =
            match symbolic with
            | None ->
                M.incr m_analyze;
                Sparse.factor a
            | Some sym -> begin
                try
                  let sf = Sparse.refactor sym a in
                  M.incr m_refactor;
                  sf
                with Sparse.Repivot | Sparse.Singular ->
                  (* values moved too far from the analysed ones for
                     the recorded pivots: analyse afresh (a genuinely
                     singular system re-raises from the factor) *)
                  note_fallback ~kind:"sparse" p.n;
                  M.incr m_analyze;
                  Sparse.factor a
              end
          in
          M.set m_lu_nnz (Float.of_int (Sparse.lu_nnz sf));
          F_sparse sf)

let factor p ~fill = factor_with p ~fill

let solve_permuted_into_raw f ~b ~x =
  match f with
  | F_dense lu -> Lu.solve_into lu ~b ~x
  | F_banded bd -> Banded.solve_into bd ~b ~x
  | F_sparse sf -> Sparse.solve_into sf ~b ~x

let solve_permuted_into f ~b ~x =
  (* hot path: when recording is off this is one predicted branch on
     top of the raw solve — no closure, no timing syscalls *)
  if M.recording () then begin
    M.incr m_solve;
    let t = Rlc_instr.Timer.start () in
    solve_permuted_into_raw f ~b ~x;
    M.observe m_solve_s (Rlc_instr.Timer.elapsed_s t)
  end
  else solve_permuted_into_raw f ~b ~x

type scratch = { sb : float array; sx : float array }

let scratch p = { sb = Array.make p.n 0.0; sx = Array.make p.n 0.0 }

let solve_into p f s ~b ~x =
  let n = p.n in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Solver.solve_into: size mismatch";
  if Array.length s.sb <> n then
    invalid_arg "Solver.solve_into: scratch from another plan";
  for i = 0 to n - 1 do
    s.sb.(p.perm.(i)) <- b.(i)
  done;
  solve_permuted_into f ~b:s.sb ~x:s.sx;
  for i = 0 to n - 1 do
    x.(i) <- s.sx.(p.perm.(i))
  done

let solve p f b =
  if Array.length b <> p.n then invalid_arg "Solver.solve: size mismatch";
  let x = Array.make p.n 0.0 in
  solve_into p f (scratch p) ~b ~x;
  x

type cfactor =
  | C_dense of Clu.t
  | C_banded of Cbanded.t
  | C_sparse of Sparse.ct

let csymbolic_of = function
  | C_sparse sf -> Some (Sparse.csymbolic sf)
  | C_dense _ | C_banded _ -> None

let sparse_ccsc p ~fill =
  Sparse.cof_fill ~n:p.n (fun add ->
      fill (fun i j v -> add p.perm.(i) p.perm.(j) v))

let cfactor_with ?symbolic p ~fill =
  M.incr m_cfactor;
  M.timed m_cfactor_s (fun () ->
      match p.choice with
      | Banded_lu ->
          let s = Cbanded.create_storage ~n:p.n ~kl:p.kl ~ku:p.ku in
          fill (fun i j v -> Cbanded.add_to s p.perm.(i) p.perm.(j) v);
          C_banded (Cbanded.decompose s)
      | Dense_lu ->
          let a = Cmatrix.create p.n p.n in
          fill (fun i j v -> Cmatrix.add_to a p.perm.(i) p.perm.(j) v);
          C_dense (Clu.decompose a)
      | Sparse_lu ->
          let a = sparse_ccsc p ~fill in
          let sf =
            match symbolic with
            | None ->
                M.incr m_canalyze;
                Sparse.cfactor a
            | Some sym -> begin
                try
                  let sf = Sparse.crefactor sym a in
                  M.incr m_crefactor;
                  sf
                with Sparse.Repivot | Sparse.Singular ->
                  note_fallback ~kind:"csparse" p.n;
                  M.incr m_canalyze;
                  Sparse.cfactor a
              end
          in
          M.set m_lu_nnz (Float.of_int (Sparse.clu_nnz sf));
          C_sparse sf)

let cfactor p ~fill = cfactor_with p ~fill

type cscratch = { cb : Cx.t array; cx : Cx.t array }

let cscratch p = { cb = Array.make p.n Cx.zero; cx = Array.make p.n Cx.zero }

let csolve_permuted_into_raw f ~b ~x =
  match f with
  | C_dense lu -> Clu.solve_into lu ~b ~x
  | C_banded bd -> Cbanded.solve_into bd ~b ~x
  | C_sparse sf -> Sparse.csolve_into sf ~b ~x

let csolve_into p f s ~b ~x =
  let n = p.n in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Solver.csolve_into: size mismatch";
  if Array.length s.cb <> n then
    invalid_arg "Solver.csolve_into: scratch from another plan";
  for i = 0 to n - 1 do
    s.cb.(p.perm.(i)) <- b.(i)
  done;
  if M.recording () then begin
    M.incr m_csolve;
    let t = Rlc_instr.Timer.start () in
    csolve_permuted_into_raw f ~b:s.cb ~x:s.cx;
    M.observe m_csolve_s (Rlc_instr.Timer.elapsed_s t)
  end
  else csolve_permuted_into_raw f ~b:s.cb ~x:s.cx;
  for i = 0 to n - 1 do
    x.(i) <- s.cx.(p.perm.(i))
  done

let csolve p f b =
  if Array.length b <> p.n then invalid_arg "Solver.csolve: size mismatch";
  let x = Array.make p.n Cx.zero in
  csolve_into p f (cscratch p) ~b ~x;
  x
