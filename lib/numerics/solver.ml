module M = Rlc_instr.Metrics

let m_plan_banded = M.counter "solver.plan.banded"
let m_plan_dense = M.counter "solver.plan.dense"
let m_bandwidth = M.gauge "solver.plan.bandwidth"
let m_n = M.gauge "solver.plan.n"
let m_factor = M.counter "solver.factor"
let m_factor_s = M.hist "solver.factor_s"
let m_solve = M.counter "solver.solve"
let m_solve_s = M.hist "solver.solve_s"
let m_cfactor = M.counter "solver.cfactor"
let m_cfactor_s = M.hist "solver.cfactor_s"
let m_csolve = M.counter "solver.csolve"
let m_csolve_s = M.hist "solver.csolve_s"

type backend = Auto | Dense | Banded

type plan = {
  n : int;
  perm : int array;
  kl : int;
  ku : int;
  use_banded : bool;
}

(* Use the banded kernel when the band occupies at most a third of the
   matrix and the system is big enough for the bookkeeping to pay off;
   RC/RLC ladders have kl = ku of 2-3 independent of length. *)
let banded_pays ~n ~kl ~ku = n >= 12 && 3 * (kl + ku + 1) <= n

let plan ?(backend = Auto) adj =
  let n = Array.length adj in
  if n = 0 then invalid_arg "Solver.plan: empty adjacency";
  let perm = Rcm.permutation adj in
  let kl = ref 0 and ku = ref 0 in
  Array.iteri
    (fun i neighbours ->
      List.iter
        (fun j ->
          let d = perm.(i) - perm.(j) in
          if d > !kl then kl := d;
          if -d > !ku then ku := -d)
        neighbours)
    adj;
  let use_banded =
    match backend with
    | Dense -> false
    | Banded -> true
    | Auto -> banded_pays ~n ~kl:!kl ~ku:!ku
  in
  M.incr (if use_banded then m_plan_banded else m_plan_dense);
  M.set m_bandwidth (Float.of_int (!kl + !ku + 1));
  M.set m_n (Float.of_int n);
  { n; perm; kl = !kl; ku = !ku; use_banded }

type factor = F_dense of Lu.t | F_banded of Banded.t

let factor p ~fill =
  M.incr m_factor;
  M.timed m_factor_s (fun () ->
      if p.use_banded then begin
        let s = Banded.create_storage ~n:p.n ~kl:p.kl ~ku:p.ku in
        fill (fun i j v -> Banded.add_to s p.perm.(i) p.perm.(j) v);
        F_banded (Banded.decompose s)
      end
      else begin
        let a = Matrix.create p.n p.n in
        fill (fun i j v -> Matrix.add_to a p.perm.(i) p.perm.(j) v);
        F_dense (Lu.decompose a)
      end)

let solve_permuted_into_raw f ~b ~x =
  match f with
  | F_dense lu -> Lu.solve_into lu ~b ~x
  | F_banded bd -> Banded.solve_into bd ~b ~x

let solve_permuted_into f ~b ~x =
  (* hot path: when recording is off this is one predicted branch on
     top of the raw solve — no closure, no timing syscalls *)
  if M.recording () then begin
    M.incr m_solve;
    let t = Rlc_instr.Timer.start () in
    solve_permuted_into_raw f ~b ~x;
    M.observe m_solve_s (Rlc_instr.Timer.elapsed_s t)
  end
  else solve_permuted_into_raw f ~b ~x

let solve p f b =
  let n = p.n in
  if Array.length b <> n then invalid_arg "Solver.solve: size mismatch";
  let bp = Array.make n 0.0 in
  for i = 0 to n - 1 do
    bp.(p.perm.(i)) <- b.(i)
  done;
  let xp = Array.make n 0.0 in
  solve_permuted_into f ~b:bp ~x:xp;
  Array.init n (fun i -> xp.(p.perm.(i)))

type cfactor = C_dense of Clu.t | C_banded of Cbanded.t

let cfactor p ~fill =
  M.incr m_cfactor;
  M.timed m_cfactor_s (fun () ->
      if p.use_banded then begin
        let s = Cbanded.create_storage ~n:p.n ~kl:p.kl ~ku:p.ku in
        fill (fun i j v -> Cbanded.add_to s p.perm.(i) p.perm.(j) v);
        C_banded (Cbanded.decompose s)
      end
      else begin
        let a = Cmatrix.create p.n p.n in
        fill (fun i j v -> Cmatrix.add_to a p.perm.(i) p.perm.(j) v);
        C_dense (Clu.decompose a)
      end)

let csolve p f b =
  let n = p.n in
  if Array.length b <> n then invalid_arg "Solver.csolve: size mismatch";
  let bp = Array.make n Cx.zero in
  for i = 0 to n - 1 do
    bp.(p.perm.(i)) <- b.(i)
  done;
  M.incr m_csolve;
  let xp =
    M.timed m_csolve_s (fun () ->
        match f with
        | C_dense lu -> Clu.solve lu bp
        | C_banded bd -> Cbanded.solve bd bp)
  in
  Array.init n (fun i -> xp.(p.perm.(i)))
