let nonempty name a =
  if Array.length a = 0 then invalid_arg ("Stats." ^ name ^ ": empty array")

let mean a =
  nonempty "mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  nonempty "variance" a;
  let m = mean a in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a
  /. float_of_int (Array.length a)

let stddev a = Float.sqrt (variance a)

let rms a =
  nonempty "rms" a;
  Float.sqrt
    (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 a
    /. float_of_int (Array.length a))

let min a =
  nonempty "min" a;
  Array.fold_left Float.min a.(0) a

let max a =
  nonempty "max" a;
  Array.fold_left Float.max a.(0) a

let min_max a =
  nonempty "min_max" a;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0)) a

let rms_sampled ~xs ~ys =
  nonempty "rms_sampled" xs;
  nonempty "rms_sampled" ys;
  if Array.length xs <> Array.length ys then
    invalid_arg "Stats.rms_sampled: xs and ys length mismatch";
  let span = xs.(Array.length xs - 1) -. xs.(0) in
  if span <= 0.0 then invalid_arg "Stats.rms_sampled: zero time span";
  let y2 = Array.map (fun y -> y *. y) ys in
  Float.sqrt (Quadrature.trapezoid_sampled ~xs ~ys:y2 /. span)

let percentile a p =
  nonempty "percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
  end
