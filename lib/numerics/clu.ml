type t = {
  lu : Cmatrix.t; (* combined L (unit diagonal, below) and U (on/above) *)
  perm : int array; (* row permutation *)
}

exception Singular

let m_decompose = Rlc_instr.Metrics.counter "clu.decompose"
let m_solve = Rlc_instr.Metrics.counter "clu.solve"

let size f = Array.length f.perm

(* Doolittle factorisation with partial (row) pivoting by modulus. *)
let decompose ?(pivot_tol = 1e-300) a =
  Rlc_instr.Metrics.incr m_decompose;
  let n = Cmatrix.rows a in
  if Cmatrix.cols a <> n then invalid_arg "Clu.decompose: matrix not square";
  let lu = Cmatrix.copy a in
  let perm = Array.init n (fun k -> k) in
  for k = 0 to n - 1 do
    let pivot_row = ref k in
    let pivot_val = ref (Cx.norm (Cmatrix.get lu k k)) in
    for r = k + 1 to n - 1 do
      let v = Cx.norm (Cmatrix.get lu r k) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := r
      end
    done;
    if !pivot_val <= pivot_tol then raise Singular;
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = Cmatrix.get lu k j in
        Cmatrix.set lu k j (Cmatrix.get lu !pivot_row j);
        Cmatrix.set lu !pivot_row j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp
    end;
    let pivot = Cmatrix.get lu k k in
    for r = k + 1 to n - 1 do
      let factor = Cx.( /: ) (Cmatrix.get lu r k) pivot in
      Cmatrix.set lu r k factor;
      for j = k + 1 to n - 1 do
        Cmatrix.set lu r j
          (Cx.( -: ) (Cmatrix.get lu r j)
             (Cx.( *: ) factor (Cmatrix.get lu k j)))
      done
    done
  done;
  { lu; perm }

let solve_into f ~b ~x =
  Rlc_instr.Metrics.incr m_solve;
  let n = size f in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Clu.solve_into: size mismatch";
  if x == b then invalid_arg "Clu.solve_into: b and x must be distinct";
  for k = 0 to n - 1 do
    x.(k) <- b.(f.perm.(k))
  done;
  (* forward substitution: L y = P b *)
  for k = 1 to n - 1 do
    let acc = ref x.(k) in
    for j = 0 to k - 1 do
      acc := Cx.( -: ) !acc (Cx.( *: ) (Cmatrix.get f.lu k j) x.(j))
    done;
    x.(k) <- !acc
  done;
  (* back substitution: U x = y *)
  for k = n - 1 downto 0 do
    let acc = ref x.(k) in
    for j = k + 1 to n - 1 do
      acc := Cx.( -: ) !acc (Cx.( *: ) (Cmatrix.get f.lu k j) x.(j))
    done;
    x.(k) <- Cx.( /: ) !acc (Cmatrix.get f.lu k k)
  done

let solve f b =
  let n = size f in
  if Array.length b <> n then invalid_arg "Clu.solve: size mismatch";
  let x = Array.make n Cx.zero in
  solve_into f ~b ~x;
  x

let solve_matrix ?pivot_tol a b = solve (decompose ?pivot_tol a) b
