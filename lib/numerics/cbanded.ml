(* Complex band storage in LAPACK's general-band convention (see
   Banded for the real twin): column j is contiguous, entry (i,j)
   lives at offset [kl + ku + i - j], and the top [kl] rows of each
   column are workspace so that the fill-in created by row pivoting (U
   gains up to kl extra superdiagonals) stays inside the array.  Real
   and imaginary parts are split into two float arrays so assembly and
   factorisation never box a complex value. *)

type storage = {
  n : int;
  skl : int;
  sku : int;
  ldab : int; (* 2*skl + sku + 1 *)
  re : float array; (* column-major, n columns of height ldab *)
  im : float array;
}

type t = {
  fn : int;
  fkl : int;
  fku : int;
  fldab : int;
  fre : float array; (* factorised bands: L multipliers + widened U *)
  fim : float array;
  ipiv : int array; (* row interchanged with row k at step k *)
}

exception Singular

let create_storage ~n ~kl ~ku =
  if n <= 0 then invalid_arg "Cbanded.create_storage: n <= 0";
  if kl < 0 || ku < 0 then
    invalid_arg "Cbanded.create_storage: negative bandwidth";
  if kl >= n || ku >= n then
    invalid_arg "Cbanded.create_storage: bandwidth >= n";
  let ldab = (2 * kl) + ku + 1 in
  {
    n;
    skl = kl;
    sku = ku;
    ldab;
    re = Array.make (n * ldab) 0.0;
    im = Array.make (n * ldab) 0.0;
  }

let storage_n s = s.n
let storage_kl s = s.skl
let storage_ku s = s.sku

let idx s i j = (j * s.ldab) + s.skl + s.sku + i - j

let check_bounds s i j =
  if i < 0 || i >= s.n || j < 0 || j >= s.n then
    invalid_arg
      (Printf.sprintf "Cbanded: index (%d,%d) out of %dx%d" i j s.n s.n)

let in_band s i j = i - j <= s.skl && j - i <= s.sku

let get s i j =
  check_bounds s i j;
  if in_band s i j then
    let k = idx s i j in
    Cx.make s.re.(k) s.im.(k)
  else Cx.zero

let check_band s i j =
  check_bounds s i j;
  if not (in_band s i j) then
    invalid_arg
      (Printf.sprintf "Cbanded: (%d,%d) outside band (kl=%d, ku=%d)" i j s.skl
         s.sku)

let set s i j v =
  check_band s i j;
  let k = idx s i j in
  s.re.(k) <- Cx.re v;
  s.im.(k) <- Cx.im v

let add_to s i j v =
  check_band s i j;
  let k = idx s i j in
  s.re.(k) <- s.re.(k) +. Cx.re v;
  s.im.(k) <- s.im.(k) +. Cx.im v

let to_dense s =
  let m = Cmatrix.create s.n s.n in
  for j = 0 to s.n - 1 do
    for i = Int.max 0 (j - s.sku) to Int.min (s.n - 1) (j + s.skl) do
      let k = idx s i j in
      Cmatrix.set m i j (Cx.make s.re.(k) s.im.(k))
    done
  done;
  m

(* Smith's algorithm for (ar + i ai) / (br + i bi): avoids the
   overflow/underflow of the naive formula when |b| is extreme. *)
let div_parts ar ai br bi =
  if Float.abs br >= Float.abs bi then begin
    let r = bi /. br in
    let d = br +. (bi *. r) in
    ((ar +. (ai *. r)) /. d, (ai -. (ar *. r)) /. d)
  end
  else begin
    let r = br /. bi in
    let d = (br *. r) +. bi in
    (((ar *. r) +. ai) /. d, ((ai *. r) -. ar) /. d)
  end

(* Unblocked zgbtf2, mirroring Banded.decompose: at column j the pivot
   is searched by modulus over the kl rows below the diagonal; a swap
   moves a row whose entries extend up to column j + kl + ku, which is
   why U is stored kl wider than the assembled band. *)
let m_decompose = Rlc_instr.Metrics.counter "cbanded.decompose"
let m_solve = Rlc_instr.Metrics.counter "cbanded.solve"

(* see Banded.band_amax: the same sweep works before (workspace rows
   zero) and after (L multipliers have modulus <= 1) factorisation *)
let cband_amax re im =
  let m = ref 0.0 in
  for k = 0 to Array.length re - 1 do
    let v = Float.hypot re.(k) im.(k) in
    if v > !m then m := v
  done;
  !m

let decompose ?(pivot_tol = 1e-300) s =
  Rlc_instr.Metrics.incr m_decompose;
  let { n; skl = kl; sku = ku; ldab; re; im } = s in
  let at i j = (j * ldab) + kl + ku + i - j in
  let probing = Rlc_instr.Metrics.recording () in
  let amax = if probing then cband_amax re im else 0.0 in
  let ipiv = Array.make n 0 in
  let ju = ref 0 in
  for j = 0 to n - 1 do
    let km = Int.min kl (n - 1 - j) in
    let jp = ref 0 in
    let pv = ref (Float.hypot re.(at j j) im.(at j j)) in
    for i = 1 to km do
      let k = at (j + i) j in
      let v = Float.hypot re.(k) im.(k) in
      if v > !pv then begin
        pv := v;
        jp := i
      end
    done;
    if !pv <= pivot_tol then begin
      Rlc_instr.Health.failure ~kind:"cbanded" ~reason:"singular pivot";
      raise Singular
    end;
    ipiv.(j) <- j + !jp;
    ju := Int.max !ju (Int.min (j + ku + !jp) (n - 1));
    if !jp <> 0 then begin
      let r = j + !jp in
      for c = j to !ju do
        let a = at j c and b = at r c in
        let tr = re.(a) and ti = im.(a) in
        re.(a) <- re.(b);
        im.(a) <- im.(b);
        re.(b) <- tr;
        im.(b) <- ti
      done
    end;
    if km > 0 then begin
      let p = at j j in
      let pr = re.(p) and pi = im.(p) in
      for i = 1 to km do
        let k = at (j + i) j in
        let qr, qi = div_parts re.(k) im.(k) pr pi in
        re.(k) <- qr;
        im.(k) <- qi
      done;
      for c = j + 1 to !ju do
        let u = at j c in
        let ur = re.(u) and ui = im.(u) in
        if ur <> 0.0 || ui <> 0.0 then
          for i = 1 to km do
            let l = at (j + i) j in
            let k = at (j + i) c in
            let lr = re.(l) and li = im.(l) in
            re.(k) <- re.(k) -. ((lr *. ur) -. (li *. ui));
            im.(k) <- im.(k) -. ((lr *. ui) +. (li *. ur))
          done
      done
    end
  done;
  if probing then begin
    let umax = cband_amax re im in
    let dmin = ref infinity and dmax = ref 0.0 in
    for j = 0 to n - 1 do
      let k = at j j in
      let d = Float.hypot re.(k) im.(k) in
      if d < !dmin then dmin := d;
      if d > !dmax then dmax := d
    done;
    let growth = if amax > 0.0 then umax /. amax else 1.0 in
    let rcond = if !dmax > 0.0 then !dmin /. !dmax else 0.0 in
    ignore (Rlc_instr.Health.observe ~kind:"cbanded" ~growth ~rcond ())
  end;
  { fn = n; fkl = kl; fku = ku; fldab = ldab; fre = re; fim = im; ipiv }

let size f = f.fn
let kl f = f.fkl
let ku f = f.fku

let solve_into f ~b ~x =
  Rlc_instr.Metrics.incr m_solve;
  let n = f.fn in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Cbanded.solve_into: size mismatch";
  let { fkl = kl; fku = ku; fldab = ldab; fre = re; fim = im; ipiv; _ } = f in
  let at i j = (j * ldab) + kl + ku + i - j in
  (* split the RHS so the substitution sweeps stay box-free *)
  let xr = Array.make n 0.0 and xi = Array.make n 0.0 in
  for k = 0 to n - 1 do
    xr.(k) <- Cx.re b.(k);
    xi.(k) <- Cx.im b.(k)
  done;
  (* L y = P b, applying the interchanges in factorisation order *)
  for j = 0 to n - 1 do
    let p = ipiv.(j) in
    if p <> j then begin
      let tr = xr.(j) and ti = xi.(j) in
      xr.(j) <- xr.(p);
      xi.(j) <- xi.(p);
      xr.(p) <- tr;
      xi.(p) <- ti
    end;
    let yr = xr.(j) and yi = xi.(j) in
    if yr <> 0.0 || yi <> 0.0 then begin
      let km = Int.min kl (n - 1 - j) in
      for i = 1 to km do
        let l = at (j + i) j in
        let lr = re.(l) and li = im.(l) in
        xr.(j + i) <- xr.(j + i) -. ((lr *. yr) -. (li *. yi));
        xi.(j + i) <- xi.(j + i) -. ((lr *. yi) +. (li *. yr))
      done
    end
  done;
  (* U x = y; U has kl + ku superdiagonals after pivoting *)
  for j = n - 1 downto 0 do
    let d = at j j in
    let qr, qi = div_parts xr.(j) xi.(j) re.(d) im.(d) in
    xr.(j) <- qr;
    xi.(j) <- qi;
    if qr <> 0.0 || qi <> 0.0 then begin
      let lm = Int.min (kl + ku) j in
      for i = 1 to lm do
        let u = at (j - i) j in
        let ur = re.(u) and ui = im.(u) in
        xr.(j - i) <- xr.(j - i) -. ((ur *. qr) -. (ui *. qi));
        xi.(j - i) <- xi.(j - i) -. ((ur *. qi) +. (ui *. qr))
      done
    end
  done;
  for k = 0 to n - 1 do
    x.(k) <- Cx.make xr.(k) xi.(k)
  done

let solve f b =
  let x = Array.make f.fn Cx.zero in
  solve_into f ~b ~x;
  x
