type t = { rows : int; cols : int; data : Cx.t array }

let create rows cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg "Cmatrix.create: non-positive dimension";
  { rows; cols; data = Array.make (rows * cols) Cx.zero }

let rows m = m.rows
let cols m = m.cols
let idx m i j = (i * m.cols) + j

let check_bounds m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Cmatrix: index (%d,%d) out of %dx%d" i j m.rows m.cols)

let get m i j =
  check_bounds m i j;
  m.data.(idx m i j)

let set m i j v =
  check_bounds m i j;
  m.data.(idx m i j) <- v

let add_to m i j v =
  check_bounds m i j;
  m.data.(idx m i j) <- Cx.( +: ) m.data.(idx m i j) v

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.(idx m i j) <- f i j
    done
  done;
  m

let copy m = { m with data = Array.copy m.data }

let of_matrix a =
  init (Matrix.rows a) (Matrix.cols a) (fun i j ->
      Cx.of_float (Matrix.get a i j))

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let mul_vec m v =
  if m.cols <> Array.length v then
    invalid_arg "Cmatrix.mul_vec: shape mismatch";
  Array.init m.rows (fun i ->
      let acc = ref Cx.zero in
      for k = 0 to m.cols - 1 do
        acc := Cx.( +: ) !acc (Cx.( *: ) m.data.(idx m i k) v.(k))
      done;
      !acc)

let max_norm m =
  Array.fold_left (fun acc z -> Float.max acc (Cx.norm z)) 0.0 m.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf "  ";
      Format.fprintf ppf "(%a)" Cx.pp (get m i j)
    done;
    Format.fprintf ppf "@]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
