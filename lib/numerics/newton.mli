(** Damped multi-dimensional Newton iteration on a residual
    [f : R^n -> R^n].

    This drives the paper's optimizer: the two residuals (g1, g2) of
    equations (7)-(8) are driven to zero in the (h, k) plane.  The
    implementation damps steps with a backtracking line search on
    ||f||^2 and optionally clamps iterates to a box, which keeps the
    iteration away from the unphysical h <= 0 / k <= 0 region. *)

type result = {
  x : float array;  (** solution estimate *)
  residual_norm : float;  (** euclidean norm of f at [x] *)
  iterations : int;
  converged : bool;
}

val solve_ctx :
  ?max_iter:int ->
  ?tol:float ->
  ?jacobian:('a -> float array -> Matrix.t) ->
  ?lower:float array ->
  ?upper:float array ->
  ctx:'a ->
  f:('a -> float array -> float array) ->
  x0:float array ->
  unit ->
  result
(** [solve_ctx ~ctx ~f ~x0 ()] iterates from [x0], passing [ctx] — a
    precompiled evaluation workspace, e.g. a
    [Rlc_circuit.Whatif.t] — to every residual (and Jacobian) call
    instead of forcing callers to capture it in a closure.  This is
    the residual half of the unified what-if evaluation interface:
    the workspace is built once, the optimizer loop re-evaluates
    cheaply.  Convergence is declared when the residual norm falls
    below [tol] (default 1e-10) relative to the initial residual, or
    absolutely below [tol].  When [jacobian] is omitted a central
    finite-difference Jacobian is used.  [lower] / [upper] clamp every
    iterate componentwise. *)

val solve :
  ?max_iter:int ->
  ?tol:float ->
  ?jacobian:(float array -> Matrix.t) ->
  ?lower:float array ->
  ?upper:float array ->
  f:(float array -> float array) ->
  x0:float array ->
  unit ->
  result
(** [solve ~f ~x0 ()] — {!solve_ctx} with the workspace captured in
    the closure.

    @deprecated the bare-closure shape; new call sites should build a
    context (or a [Rlc_circuit.Whatif.residuals] record) and use
    {!solve_ctx}.  This wrapper threads a unit context through the
    same implementation, so existing callers are bit-identical. *)
