(** Sherman-Morrison-Woodbury rank-k updates over the shared
    {!Solver} factor types.

    A what-if loop perturbs a handful of element values in a system
    that was already factorised: the perturbed matrix is

      A' = A + sum_i scale_i * u_i v_i^T

    with k small (one segment's r/l/c touches one or two rank-1
    terms).  Refactoring A' from scratch costs a full numeric
    factorisation per point; the Woodbury identity serves the same
    solve from the BASE factor plus k extra triangular solves:

      A'^-1 b = x0 - Z S^-1 V^T x0,   x0 = A^-1 b,
      Z = [A^-1 u_1 .. A^-1 u_k],     S = I + diag-free (V^T Z D)

    where S is the k x k capacitance matrix.  The expensive pieces —
    the columns [z_i = A^-1 u_i] and the base solution [x0] — depend
    only on the base factor and the perturbation *directions*, not the
    perturbation *values*, so a value sweep along fixed directions
    precomputes them once and pays O(k n) per point.

    The identity is exact in exact arithmetic; in floats it degrades
    with the conditioning of S.  {!condition} estimates cond_1(S) so a
    caller (the {!Rlc_circuit.Whatif} workspace) can fall back to a
    full refactor when an update would lose digits. *)

exception Singular
(** The k x k capacitance matrix is numerically singular: the update
    annihilates the base factor (e.g. a conductance perturbed to
    exactly cancel a loop).  Fall back to a fresh factorisation. *)

(** {1 Real updates} *)

type t
(** A rank-k updated view [A + sum scale_i u_i v_i^T] of a real base
    factor.  Immutable once built. *)

val make :
  ?z:float array array ->
  ?scale:float array ->
  Solver.plan ->
  Solver.factor ->
  u:float array array ->
  v:float array array ->
  t
(** [make plan factor ~u ~v] builds the update [A + sum scale_i u_i
    v_i^T] ([scale] defaults to all ones).  [u] and [v] are k columns
    in natural (unpermuted) coordinates; k = 0 degrades to the
    identity update.  [?z] supplies precomputed base solves [z_i =
    A^-1 u_i] (the value-sweep fast path: the caller caches them per
    direction); when omitted they are computed here with k solves
    through [factor].  Raises {!Singular} when S is exactly singular
    and [Invalid_argument] on mismatched lengths. *)

val rank : t -> int

val condition : t -> float
(** 1-norm condition estimate of the k x k capacitance matrix
    (exact [||S||_1 ||S^-1||_1] — S is tiny).  Near 1 for benign
    value perturbations; large values mean the update is cancelling
    the base factor and digits are being lost.  1.0 at rank 0. *)

val apply : t -> x0:float array -> x:float array -> unit
(** [apply t ~x0 ~x] finishes a solve whose base part is already
    known: given [x0 = A^-1 b], writes [A'^-1 b] into [x].  O(k n).
    [x0] and [x] may alias.  This is the sweep hot path: [x0] for a
    fixed RHS is computed once per sweep, not once per point. *)

val solve : t -> float array -> float array
(** [solve t b] is [A'^-1 b] from scratch: one base solve plus
    {!apply} (fresh result array). *)

(** {1 Complex updates} *)

type ct
(** Complex twin of {!t} over a {!Solver.cfactor} — the
    AC what-if path, where a perturbation of G or C shifts [G + sC] by
    complex-scaled rank-1 terms. *)

val cmake :
  ?z:Cx.t array array ->
  ?scale:Cx.t array ->
  Solver.plan ->
  Solver.cfactor ->
  u:Cx.t array array ->
  v:Cx.t array array ->
  ct

val crank : ct -> int
val ccondition : ct -> float
val capply : ct -> x0:Cx.t array -> x:Cx.t array -> unit
val csolve : ct -> Cx.t array -> Cx.t array
