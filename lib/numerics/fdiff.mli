(** Finite-difference derivatives.

    Used to form the Jacobian of the optimizer residuals (g1, g2) of
    the paper's equations (7)-(8), and in tests to validate analytic
    derivatives. *)

val central : ?rel_step:float -> (float -> float) -> float -> float
(** [central f x] approximates [f'(x)] by a central difference with a
    step of [rel_step * (1 + |x|)] (default [rel_step] = 1e-6). *)

val forward : ?rel_step:float -> (float -> float) -> float -> float

val partial :
  ?rel_step:float -> (float array -> float) -> float array -> int -> float
(** [partial f x i] is the central-difference estimate of df/dx_i. *)

val gradient :
  ?rel_step:float -> (float array -> float) -> float array -> float array

val jacobian :
  ?rel_step:float ->
  (float array -> float array) ->
  float array ->
  Matrix.t
(** [jacobian f x] is the central-difference Jacobian; row [i] holds
    the partials of output [i]. *)
