(** Complex-number helpers layered over [Stdlib.Complex].

    The delay model of the core library evaluates pole expressions that
    are real for overdamped stages and complex-conjugate for
    underdamped ones; carrying every intermediate value as a complex
    number keeps one code path for both regimes.  This module adds the
    operators and conversions [Stdlib.Complex] lacks. *)

type t = Complex.t = { re : float; im : float }

val zero : t
val one : t
val i : t

val of_float : float -> t
(** [of_float x] is the complex number [x + 0i]. *)

val make : float -> float -> t
(** [make re im] builds a complex number from parts. *)

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t
val neg : t -> t
val scale : float -> t -> t

val sqrt : t -> t
val exp : t -> t
val log : t -> t
val pow : t -> t -> t
val norm : t -> float
val norm2 : t -> float
val arg : t -> float
val conj : t -> t
val inv : t -> t

val re : t -> float
val im : t -> float

val is_finite : t -> bool
(** [is_finite z] is true when both parts are finite floats. *)

val is_real : ?tol:float -> t -> bool
(** [is_real ~tol z] holds when |Im z| <= tol * (1 + |Re z|).
    Default [tol] is [1e-9]. *)

val real_part_checked : ?tol:float -> t -> float
(** [real_part_checked z] returns [Re z], raising [Invalid_argument]
    when [is_real ~tol z] fails.  Used where a computation is known to
    produce a mathematically real value through complex intermediates. *)

val close : ?tol:float -> t -> t -> bool
(** Relative/absolute closeness of two complex values. *)

val pp : Format.formatter -> t -> unit
