let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let nrm2 a = Float.sqrt (dot a a)

(* One MGS sweep of v against the basis, in place. *)
let orthogonalize basis v =
  List.iter
    (fun u ->
      let h = dot u v in
      for i = 0 to Array.length v - 1 do
        v.(i) <- v.(i) -. (h *. u.(i))
      done)
    basis

let m_vectors = Rlc_instr.Metrics.counter "arnoldi.vectors"
let m_deflations = Rlc_instr.Metrics.counter "arnoldi.deflations"

let block ?(tol = 1e-10) ~mul ~start m =
  if m < 1 then invalid_arg "Arnoldi.block: m < 1";
  let p = Array.length start in
  if p = 0 then invalid_arg "Arnoldi.block: empty start block";
  let n = Array.length start.(0) in
  Array.iter
    (fun col ->
      if Array.length col <> n then
        invalid_arg "Arnoldi.block: mismatched column lengths")
    start;
  (* basis kept newest-first; order only matters for the result *)
  let basis = ref [] in
  let count = ref 0 in
  let push_candidate w =
    let scale0 = nrm2 w in
    orthogonalize !basis w;
    orthogonalize !basis w;
    (* re-orthogonalisation pass *)
    let scale1 = nrm2 w in
    if scale1 > tol *. (scale0 +. 1e-300) && scale1 > 0.0 then begin
      let v = Array.map (fun x -> x /. scale1) w in
      basis := v :: !basis;
      incr count;
      Rlc_instr.Metrics.incr m_vectors;
      true
    end
    else begin
      Rlc_instr.Metrics.incr m_deflations;
      false
    end
  in
  Array.iter (fun col -> if !count < m then ignore (push_candidate (Array.copy col))) start;
  if !count = 0 then invalid_arg "Arnoldi.block: start block is zero";
  (* apply A to each accepted basis vector in generation order;
     deflated candidates simply do not enqueue a successor *)
  let ordered () = Array.of_list (List.rev !basis) in
  let j = ref 0 in
  let continue_ = ref true in
  while !continue_ && !count < m do
    let vs = ordered () in
    if !j >= Array.length vs then continue_ := false (* invariant: breakdown *)
    else begin
      ignore (push_candidate (mul vs.(!j)));
      incr j
    end
  done;
  ordered ()
