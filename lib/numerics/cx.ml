type t = Complex.t = { re : float; im : float }

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let of_float x = { re = x; im = 0.0 }
let make re im = { re; im }
let ( +: ) = Complex.add
let ( -: ) = Complex.sub
let ( *: ) = Complex.mul
let ( /: ) = Complex.div
let neg = Complex.neg
let scale k z = { re = k *. z.re; im = k *. z.im }
let sqrt = Complex.sqrt
let exp = Complex.exp
let log = Complex.log
let pow = Complex.pow
let norm = Complex.norm
let norm2 = Complex.norm2
let arg = Complex.arg
let conj = Complex.conj
let inv = Complex.inv
let re z = z.re
let im z = z.im

let is_finite z =
  Float.is_finite z.re && Float.is_finite z.im

let is_real ?(tol = 1e-9) z =
  Float.abs z.im <= tol *. (1.0 +. Float.abs z.re)

let real_part_checked ?(tol = 1e-9) z =
  if is_real ~tol z then z.re
  else
    invalid_arg
      (Printf.sprintf "Cx.real_part_checked: %g + %gi is not real" z.re z.im)

let close ?(tol = 1e-9) a b =
  norm (a -: b) <= tol *. (1.0 +. Float.max (norm a) (norm b))

let pp ppf z =
  if z.im >= 0.0 then Format.fprintf ppf "%g + %gi" z.re z.im
  else Format.fprintf ppf "%g - %gi" z.re (Float.abs z.im)
