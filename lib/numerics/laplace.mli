(** Numerical inverse Laplace transform (fixed Talbot contour).

    Used to compute the exact time-domain step response of the
    distributed driver-line-load structure directly from the
    frequency-domain transfer function of equation (1), without the
    second-order Padé truncation — the reference the Padé model is
    validated against.

    Talbot's method deforms the Bromwich contour onto a cotangent
    spiral; for functions with singularities on the negative real axis
    or complex-conjugate poles (our case) it converges geometrically in
    the number of contour points. *)

val invert : ?m:int -> (Cx.t -> Cx.t) -> float -> float
(** [invert fhat t] evaluates f(t) for [t > 0] from the Laplace image
    [fhat] using [m] (default 32) contour points.  Raises
    [Invalid_argument] for [t <= 0]. *)

val step_response : ?m:int -> (Cx.t -> Cx.t) -> float -> float
(** [step_response h t] is the unit-step response of the transfer
    function [h]: the inverse transform of [h(s)/s] at time [t];
    [t = 0] returns 0. *)
