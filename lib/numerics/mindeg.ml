(* Approximate minimum-degree ordering on a quotient graph.

   The implementation follows the AMD family (Amestoy, Davis, Duff):
   eliminating a pivot turns it into an *element* whose boundary is the
   set of still-live variables it was adjacent to; variables keep a
   short list of adjacent variables plus a list of adjacent elements,
   and the clique an element represents is never materialised.  Degrees
   of the pivot's neighbours are recomputed with the AMD approximation
   (|Le \ Lp| per element, obtained for all affected elements in one
   shared pass), which keeps the update cost proportional to the lists
   actually touched instead of the clique sizes.

   Differences from a production AMD kept deliberately out of scope:
   no supervariable detection (indistinguishable-variable merging) and
   no aggressive element absorption beyond the pivot's own elements.
   On the mesh/grid patterns this repository produces the orderings are
   within a few percent of full AMD fill while the code stays a
   fraction of the size.

   Determinism: pivots come off a binary min-heap keyed on
   (approximate degree, vertex index), so ties always break towards the
   lowest vertex index and the ordering is a pure function of the
   adjacency — the property every parallel consumer of a shared
   Solver.plan relies on. *)

(* growable int vector *)
type vec = { mutable a : int array; mutable len : int }

let vmake cap = { a = Array.make (Int.max cap 1) 0; len = 0 }

let vpush v x =
  if v.len = Array.length v.a then begin
    let b = Array.make (2 * v.len) 0 in
    Array.blit v.a 0 b 0 v.len;
    v.a <- b
  end;
  v.a.(v.len) <- x;
  v.len <- v.len + 1

type result = {
  perm : int array;  (* vertex -> position in elimination order *)
  fill : float;  (* estimated nnz(L), diagonal included *)
  flops : float;  (* estimated sum over pivots of |Lp|^2 *)
}

(* binary min-heap of (key, vertex) pairs with lazy deletion: a fresh
   entry is pushed on every degree change, stale entries are skipped on
   pop when their key no longer matches the vertex's current degree. *)
module Heap = struct
  type t = {
    mutable keys : int array;
    mutable verts : int array;
    mutable len : int;
  }

  let create n = { keys = Array.make (Int.max n 1) 0; verts = Array.make (Int.max n 1) 0; len = 0 }

  let swap h i j =
    let k = h.keys.(i) and v = h.verts.(i) in
    h.keys.(i) <- h.keys.(j);
    h.verts.(i) <- h.verts.(j);
    h.keys.(j) <- k;
    h.verts.(j) <- v

  let less h i j =
    h.keys.(i) < h.keys.(j)
    || (h.keys.(i) = h.keys.(j) && h.verts.(i) < h.verts.(j))

  let push h key vert =
    if h.len = Array.length h.keys then begin
      let cap = 2 * h.len in
      let ks = Array.make cap 0 and vs = Array.make cap 0 in
      Array.blit h.keys 0 ks 0 h.len;
      Array.blit h.verts 0 vs 0 h.len;
      h.keys <- ks;
      h.verts <- vs
    end;
    h.keys.(h.len) <- key;
    h.verts.(h.len) <- vert;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && less h !i ((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    let key = h.keys.(0) and vert = h.verts.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.keys.(0) <- h.keys.(h.len);
      h.verts.(0) <- h.verts.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.len && less h l !m then m := l;
        if r < h.len && less h r !m then m := r;
        if !m <> !i then begin
          swap h !i !m;
          i := !m
        end
        else continue := false
      done
    end;
    (key, vert)
end

let order adj =
  let n = Array.length adj in
  if n = 0 then invalid_arg "Mindeg.order: empty adjacency";
  (* variable state *)
  let av = Array.init n (fun i -> vmake (List.length adj.(i))) in
  let ae = Array.init n (fun _ -> vmake 2) in
  Array.iteri
    (fun i l -> List.iter (fun j -> if j <> i then vpush av.(i) j) l)
    adj;
  let eliminated = Array.make n false in
  (* element state: vertex p, once eliminated, is the element p *)
  let evars = Array.make n None in
  let absorbed = Array.make n false in
  let degree = Array.make n 0 in
  Array.iteri (fun i v -> degree.(i) <- v.len) av;
  (* set-membership stamps *)
  let vmark = Array.make n 0 in
  let vstamp = ref 0 in
  let emark = Array.make n 0 in
  let estamp = ref 0 in
  let ew = Array.make n 0 in
  let heap = Heap.create (2 * n) in
  for i = 0 to n - 1 do
    Heap.push heap degree.(i) i
  done;
  let perm = Array.make n 0 in
  let fill = ref 0.0 and flops = ref 0.0 in
  (* compact an element's variable list down to live variables,
     returning the live count *)
  let prune_element e =
    match evars.(e) with
    | None -> 0
    | Some ev ->
        let w = ref 0 in
        for r = 0 to ev.len - 1 do
          let x = ev.a.(r) in
          if not eliminated.(x) then begin
            ev.a.(!w) <- x;
            incr w
          end
        done;
        ev.len <- !w;
        !w
  in
  let lp = vmake 16 in
  for k = 0 to n - 1 do
    (* next pivot: smallest (current degree, index) still alive *)
    let p = ref (-1) in
    while !p < 0 do
      let key, v = Heap.pop heap in
      if (not eliminated.(v)) && key = degree.(v) then p := v
    done;
    let p = !p in
    eliminated.(p) <- true;
    perm.(p) <- k;
    (* Lp := union of live av(p) and the boundaries of p's elements *)
    lp.len <- 0;
    incr vstamp;
    vmark.(p) <- !vstamp;
    for r = 0 to av.(p).len - 1 do
      let x = av.(p).a.(r) in
      if (not eliminated.(x)) && vmark.(x) <> !vstamp then begin
        vmark.(x) <- !vstamp;
        vpush lp x
      end
    done;
    for r = 0 to ae.(p).len - 1 do
      let e = ae.(p).a.(r) in
      if not absorbed.(e) then begin
        (match evars.(e) with
        | None -> ()
        | Some ev ->
            for q = 0 to ev.len - 1 do
              let x = ev.a.(q) in
              if (not eliminated.(x)) && vmark.(x) <> !vstamp then begin
                vmark.(x) <- !vstamp;
                vpush lp x
              end
            done);
        (* p's elements are absorbed into the new element p *)
        absorbed.(e) <- true;
        evars.(e) <- None
      end
    done;
    let d_p = lp.len in
    fill := !fill +. float_of_int (d_p + 1);
    flops := !flops +. (float_of_int d_p *. float_of_int d_p);
    if d_p > 0 then begin
      (* freeze Lp as the boundary of element p *)
      let boundary = vmake d_p in
      Array.blit lp.a 0 boundary.a 0 d_p;
      boundary.len <- d_p;
      evars.(p) <- Some boundary;
      av.(p) <- vmake 1;
      ae.(p) <- vmake 1;
      (* shared pass: ew.(e) = |Le \ Lp| for every element adjacent to
         a variable of Lp (AMD's approximate external degree input) *)
      incr estamp;
      for r = 0 to d_p - 1 do
        let i = boundary.a.(r) in
        for q = 0 to ae.(i).len - 1 do
          let e = ae.(i).a.(q) in
          if (not absorbed.(e)) && e <> p then begin
            if emark.(e) <> !estamp then begin
              emark.(e) <- !estamp;
              ew.(e) <- prune_element e
            end;
            ew.(e) <- ew.(e) - 1
          end
        done
      done;
      (* update each boundary variable *)
      for r = 0 to d_p - 1 do
        let i = boundary.a.(r) in
        (* drop dead variables and variables now covered by element p
           (vmark still holds Lp ∪ {p} from the gather above) *)
        let vi = av.(i) in
        let w = ref 0 in
        for q = 0 to vi.len - 1 do
          let x = vi.a.(q) in
          if (not eliminated.(x)) && vmark.(x) <> !vstamp then begin
            vi.a.(!w) <- x;
            incr w
          end
        done;
        vi.len <- !w;
        (* drop absorbed elements, count the live ones' contributions *)
        let ei = ae.(i) in
        let w = ref 0 in
        let d_elems = ref 0 in
        for q = 0 to ei.len - 1 do
          let e = ei.a.(q) in
          if not absorbed.(e) then begin
            ei.a.(!w) <- e;
            incr w;
            d_elems :=
              !d_elems
              + (if emark.(e) = !estamp then Int.max 0 ew.(e)
                 else prune_element e)
          end
        done;
        ei.len <- !w;
        vpush ei p;
        let d_new = vi.len + (d_p - 1) + !d_elems in
        (* clamp: never above the number of remaining variables, never
           above the previous degree plus the new clique *)
        let live_left = n - k - 2 in
        let d =
          Int.min (Int.max 0 live_left)
            (Int.min d_new (degree.(i) + d_p - 1))
        in
        if d <> degree.(i) then begin
          degree.(i) <- d;
          Heap.push heap d i
        end
      done
    end
  done;
  { perm; fill = !fill; flops = !flops }
