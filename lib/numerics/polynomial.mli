(** Real-coefficient polynomials with complex root extraction.

    The transfer-function denominators this project manipulates are
    low-order (the Padé model is quadratic), but the module is general:
    Durand-Kerner iteration finds all complex roots, with closed forms
    for degrees one and two. *)

type t
(** Coefficients in increasing-power order; index [i] multiplies x^i. *)

val of_coeffs : float array -> t
(** [of_coeffs [|a0; a1; ...|]] builds a0 + a1 x + ...  Trailing zero
    coefficients are trimmed; the zero polynomial is allowed. *)

val coeffs : t -> float array
val degree : t -> int
(** Degree of the polynomial; the zero polynomial has degree -1. *)

val eval : t -> float -> float
val eval_cx : t -> Cx.t -> Cx.t
val derivative : t -> t
val add : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t
val equal : ?tol:float -> t -> t -> bool

val roots : ?tol:float -> ?max_iter:int -> t -> Cx.t list
(** All complex roots (with multiplicity), sorted by real part then
    imaginary part.  Degrees 1 and 2 use closed forms; higher degrees
    use Durand-Kerner.  Raises [Invalid_argument] on the zero or
    constant polynomial. *)

val quadratic_roots : a:float -> b:float -> c:float -> Cx.t * Cx.t
(** Roots of a x^2 + b x + c, numerically stable (uses the q-formula to
    avoid cancellation).  Raises [Invalid_argument] when [a = 0]. *)

val pp : Format.formatter -> t -> unit
