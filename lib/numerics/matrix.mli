(** Dense row-major float matrices.

    Sized for the small systems this project solves: 2x2 Newton
    Jacobians on the optimizer side and a few-hundred-node MNA systems
    on the circuit-simulator side. *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix of the given shape.
    Raises [Invalid_argument] when a dimension is non-positive. *)

val identity : int -> t
val of_arrays : float array array -> t
(** Raises [Invalid_argument] on ragged or empty input. *)

val to_arrays : t -> float array array
val copy : t -> t

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j v] accumulates [v] into [m.(i).(j)]; the primitive
    MNA stamping operation. *)

val map : (float -> float) -> t -> t
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
(** Matrix product.  Raises [Invalid_argument] on shape mismatch. *)

val mul_vec : t -> float array -> float array
(** Matrix-vector product. *)

val equal : ?tol:float -> t -> t -> bool
val frobenius_norm : t -> float
val max_abs : t -> float
val pp : Format.formatter -> t -> unit
