(** Complex banded linear systems: the complex twin of {!Banded}.

    Same LAPACK general-band layout ([zgbtrf]-style): a matrix with
    [kl] subdiagonals and [ku] superdiagonals is stored column-major
    with [kl] extra workspace superdiagonals so that partial (row)
    pivoting never falls outside the storage.  Entries are kept as
    split real/imaginary float arrays, so assembling and factoring an
    n-unknown system with half-bandwidths (kl, ku) allocates no
    per-entry boxes and costs O(n·kl·(kl+ku)) — the kernel behind the
    O(n·b^2) per-frequency AC solves of {!Rlc_circuit.Mna}. *)

type storage
(** An n x n complex banded matrix being assembled (mutable). *)

type t
(** A pivoted complex banded factorisation, ready to solve. *)

exception Singular
(** Raised when a pivot falls below the singularity threshold. *)

val create_storage : n:int -> kl:int -> ku:int -> storage
(** Zero matrix of order [n] with [kl] sub- and [ku] superdiagonals.
    Raises [Invalid_argument] when [n <= 0], a bandwidth is negative,
    or a bandwidth is [>= n]. *)

val storage_n : storage -> int
val storage_kl : storage -> int
val storage_ku : storage -> int

val get : storage -> int -> int -> Cx.t
(** [get s i j] is the (i,j) entry; entries outside the band are 0.
    Raises [Invalid_argument] out of the n x n bounds. *)

val set : storage -> int -> int -> Cx.t -> unit

val add_to : storage -> int -> int -> Cx.t -> unit
(** Write / accumulate inside the band.  Raise [Invalid_argument] for
    an entry strictly outside the declared band. *)

val to_dense : storage -> Cmatrix.t

val decompose : ?pivot_tol:float -> storage -> t
(** Banded LU with partial (row) pivoting by modulus.  The storage is
    consumed: it is factorised in place and must not be reused.
    Raises [Singular] when a pivot column is below [pivot_tol] in
    modulus (default 1e-300, i.e. only exact breakdown). *)

val solve : t -> Cx.t array -> Cx.t array
(** [solve f b] solves [A x = b] (fresh result array).  Raises
    [Invalid_argument] on a length mismatch. *)

val solve_into : t -> b:Cx.t array -> x:Cx.t array -> unit
(** Solve reading [b] and writing into [x]; [b] and [x] may be the
    same array.  Raises [Invalid_argument] on a length mismatch. *)

val size : t -> int
val kl : t -> int
val ku : t -> int
