(* Fixed-Talbot inversion (Abate & Valko 2004):
     f(t) = (r/m) [ (1/2) F(r) e^{rt}
                  + sum_{k=1}^{m-1} Re( e^{t s(th_k)} F(s(th_k))
                                        (1 + i sigma(th_k)) ) ]
   with th_k = k pi / m, r = 2m / (5t),
   s(th) = r th (cot th + i), sigma(th) = th + (th cot th - 1) cot th. *)

let invert ?(m = 32) fhat t =
  if t <= 0.0 then invalid_arg "Laplace.invert: t <= 0";
  if m < 4 then invalid_arg "Laplace.invert: m < 4";
  let r = 2.0 *. float_of_int m /. (5.0 *. t) in
  let open Cx in
  let term0 = scale 0.5 (fhat (of_float r) *: exp (of_float (r *. t))) in
  let acc = ref (re term0) in
  for k = 1 to m - 1 do
    let th = float_of_int k *. Float.pi /. float_of_int m in
    let cot = cos th /. sin th in
    let s = make (r *. th *. cot) (r *. th) in
    let sigma = th +. (((th *. cot) -. 1.0) *. cot) in
    let v = exp (scale t s) *: fhat s *: make 1.0 sigma in
    acc := !acc +. re v
  done;
  r /. float_of_int m *. !acc

let step_response ?m h t =
  if t < 0.0 then invalid_arg "Laplace.step_response: t < 0";
  if t = 0.0 then 0.0
  else invert ?m (fun s -> Cx.( /: ) (h s) s) t
