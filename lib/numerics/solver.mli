(** Pluggable direct-solver backends behind one structure-analysis
    pass.

    Every sparse consumer in the repository — the transient engine's
    per-(method, dt) factorisations, the DC operating point, the AC
    per-frequency complex solves and PRIMA's Krylov G-solves — faces
    the same choice, made once by {!plan}: reorder the unknowns,
    measure what the stamped structure costs under each kernel, and
    settle on one of three backends.  Chain-structured systems
    (ladders, buses) get reverse Cuthill-McKee plus the banded kernel;
    2-D structures (PDN grids, clock meshes), where the RCM band grows
    like sqrt(n) and banded work degrades to O(n^2), get a min-degree
    ordering ({!Mindeg}) plus general sparse LU ({!Sparse}); small
    systems stay dense.  {!factor} / {!cfactor} materialise a real or
    complex system through a stamping callback into whichever storage
    the plan selected, hiding the three-way split behind one factor
    type.

    The sparse backend splits symbolic analysis from numeric
    factorisation: {!factor_with} / {!cfactor_with} replay a previous
    factor's analysis (pattern + pivot sequence) against new values in
    the same stamped structure, which is what an AC sweep does per
    frequency and the transient engine per (method, dt).  An unstable
    replay falls back to a fresh analysis transparently (counted on
    [solver.sparse.repivot]). *)

type backend =
  | Auto
      (** cost-model choice: banded for narrow bands, sparse when the
          predicted min-degree fill beats the predicted banded work,
          dense for small systems *)
  | Dense  (** force dense LU *)
  | Banded  (** force the banded kernel (RCM ordered) *)
  | Sparse  (** force general sparse LU (min-degree ordered) *)

type choice = Dense_lu | Banded_lu | Sparse_lu
(** What a plan settled on. *)

type plan = private {
  n : int;  (** unknown count *)
  perm : int array;
      (** unknown index -> position: RCM (bandwidth-minimising) for
          the dense/banded choices, min-degree (fill-minimising) for
          sparse *)
  kl : int;  (** sub-bandwidth the stamps achieve under [perm] *)
  ku : int;  (** super-bandwidth under [perm] *)
  use_banded : bool;  (** [choice = Banded_lu], kept for callers *)
  choice : choice;  (** the backend the plan settled on *)
  sparse_flops : float;
      (** the cost model's work estimate for the sparse backend (0
          unless [choice = Sparse_lu]) *)
}

val banded_pays : n:int -> kl:int -> ku:int -> bool
(** The banded-versus-dense half of the [Auto] choice: banded when the
    band occupies at most a third of the matrix and the system is big
    enough ([n >= 12]) for the bookkeeping to pay off.  On narrow
    bands (chain structure) this is the whole decision; on wide bands
    the cost model also weighs the sparse backend. *)

val plan : ?backend:backend -> int list array -> plan
(** [plan adj] analyses the nonzero structure given as an undirected
    adjacency (vertex [u]'s neighbour list at index [u]; self-loops
    ignored, symmetry assumed — the shape {!Rcm.permutation} takes)
    and picks the backend ([Auto] by default).  Deterministic: the
    plan is a pure function of [adj] and [backend].  Raises
    [Invalid_argument] on an empty adjacency. *)

type factor
(** A factorised real system, dense, banded or sparse per the plan. *)

type symbolic
(** The value-independent part of a *sparse* factorisation (column
    patterns + pivot sequence).  Immutable — safe to share across
    {!Rlc_parallel.Pool} domains. *)

val factor : plan -> fill:((int -> int -> float -> unit) -> unit) -> factor
(** [factor p ~fill] assembles and factorises a real matrix.  [fill]
    is called once with an [add i j v] accumulator taking *natural*
    (unpermuted) indices; the plan's permutation is applied inside.
    Banded assembly requires every stamped (i,j) to satisfy the plan's
    bandwidth — guaranteed when [fill] stamps the structure the plan
    was built from.  Raises {!Lu.Singular}, {!Banded.Singular} or
    {!Sparse.Singular} on numerical breakdown. *)

val factor_with :
  ?symbolic:symbolic ->
  plan ->
  fill:((int -> int -> float -> unit) -> unit) ->
  factor
(** {!factor}, reusing a previous sparse symbolic analysis when one is
    given and the plan is sparse: the recorded pattern and pivot
    sequence are replayed against the new values (no graph search, no
    pivot search).  [fill] must stamp the same structure the analysis
    saw.  When the replay is numerically unstable the call falls back
    to a fresh analysis (counter [solver.sparse.repivot]).  With no
    [symbolic], or a dense/banded plan, identical to {!factor}. *)

val symbolic_of : factor -> symbolic option
(** The reusable analysis of a sparse factor ([None] for dense and
    banded factors). *)

val solve_permuted_into : factor -> b:float array -> x:float array -> unit
(** Allocation-free solve in *permuted* coordinates ([b] and [x] may
    alias for the banded backend; for dense and sparse they must
    differ — pass distinct buffers to be backend-agnostic).  The
    hot-path entry for callers that keep their vectors permuted, like
    the transient engine. *)

type scratch
(** Caller-owned buffers for {!solve_into} — one allocation reused
    across calls instead of three per solve. *)

val scratch : plan -> scratch

val solve_into :
  plan -> factor -> scratch -> b:float array -> x:float array -> unit
(** Solve in natural coordinates into a caller-owned [x]; [b] and [x]
    may alias (the permuted copy in [scratch] decouples them).  Raises
    [Invalid_argument] on a length mismatch or a scratch built for a
    different size. *)

val solve : plan -> factor -> float array -> float array
(** Solve in natural coordinates: permutes the RHS, solves, and
    un-permutes the solution (fresh array). *)

type cfactor
(** A factorised complex system, dense, banded or sparse per the
    plan. *)

val cfactor : plan -> fill:((int -> int -> Cx.t -> unit) -> unit) -> cfactor
(** Complex twin of {!factor}: assembles [G + sC]-shaped systems into
    {!Cbanded} storage, a dense {!Cmatrix} or complex sparse CSC and
    factorises.  Raises {!Clu.Singular}, {!Cbanded.Singular} or
    {!Sparse.Singular}. *)

val cfactor_with :
  ?symbolic:symbolic ->
  plan ->
  fill:((int -> int -> Cx.t -> unit) -> unit) ->
  cfactor
(** Complex twin of {!factor_with} — the per-frequency entry of an AC
    sweep that analysed once at a reference frequency. *)

val csymbolic_of : cfactor -> symbolic option

type cscratch

val cscratch : plan -> cscratch

val csolve_into :
  plan -> cfactor -> cscratch -> b:Cx.t array -> x:Cx.t array -> unit
(** Complex twin of {!solve_into} ([b] and [x] may alias). *)

val csolve : plan -> cfactor -> Cx.t array -> Cx.t array
(** Complex solve in natural coordinates (fresh array). *)
