(** Pluggable direct-solver backends behind one structure-analysis
    pass.

    Every sparse consumer in the repository — the transient engine's
    per-(method, dt) factorisations, the DC operating point, the AC
    per-frequency complex solves and PRIMA's Krylov G-solves — faces
    the same choice: reorder the unknowns with reverse Cuthill-McKee,
    measure the bandwidth the stamped structure achieves, and factor
    banded when the band is narrow or dense otherwise.  This module is
    that choice, made once: {!plan} runs the structure analysis on an
    adjacency, and {!factor} / {!cfactor} materialise a real or
    complex system through a stamping callback into whichever storage
    the plan selected, hiding the dense/banded split behind one
    factor type. *)

type backend =
  | Auto
      (** banded when the measured band occupies at most a third of
          the matrix (and n >= 12); dense otherwise *)
  | Dense  (** force dense LU *)
  | Banded  (** force the banded kernel *)

type plan = private {
  n : int;  (** unknown count *)
  perm : int array;  (** unknown index -> bandwidth-minimising position *)
  kl : int;  (** sub-bandwidth the stamps achieve under [perm] *)
  ku : int;  (** super-bandwidth under [perm] *)
  use_banded : bool;  (** the backend the plan settled on *)
}

val banded_pays : n:int -> kl:int -> ku:int -> bool
(** The [Auto] heuristic: banded when the band occupies at most a
    third of the matrix and the system is big enough ([n >= 12]) for
    the bookkeeping to pay off. *)

val plan : ?backend:backend -> int list array -> plan
(** [plan adj] analyses the nonzero structure given as an undirected
    adjacency (vertex [u]'s neighbour list at index [u]; self-loops
    ignored, symmetry assumed — the shape {!Rcm.permutation} takes):
    computes the RCM ordering, the half-bandwidths the structure
    achieves under it, and picks the backend ([Auto] by default).
    Raises [Invalid_argument] on an empty adjacency. *)

type factor
(** A factorised real system, dense or banded per the plan. *)

val factor : plan -> fill:((int -> int -> float -> unit) -> unit) -> factor
(** [factor p ~fill] assembles and factorises a real matrix.  [fill]
    is called once with an [add i j v] accumulator taking *natural*
    (unpermuted) indices; the plan's permutation is applied inside.
    Banded assembly requires every stamped (i,j) to satisfy the plan's
    bandwidth — guaranteed when [fill] stamps the structure the plan
    was built from.  Raises {!Lu.Singular} or {!Banded.Singular} on
    numerical breakdown. *)

val solve_permuted_into : factor -> b:float array -> x:float array -> unit
(** Allocation-free solve in *permuted* coordinates ([b] and [x] may
    alias for the banded backend; for dense they must differ — pass
    distinct buffers to be backend-agnostic).  The hot-path entry for
    callers that keep their vectors permuted, like the transient
    engine. *)

val solve : plan -> factor -> float array -> float array
(** Solve in natural coordinates: permutes the RHS, solves, and
    un-permutes the solution (fresh array). *)

type cfactor
(** A factorised complex system, dense or banded per the plan. *)

val cfactor : plan -> fill:((int -> int -> Cx.t -> unit) -> unit) -> cfactor
(** Complex twin of {!factor}: assembles [G + sC]-shaped systems into
    {!Cbanded} storage (or a dense {!Cmatrix}) and factorises.  Raises
    {!Clu.Singular} or {!Cbanded.Singular}. *)

val csolve : plan -> cfactor -> Cx.t array -> Cx.t array
(** Complex solve in natural coordinates (fresh array). *)
