(** Descriptive statistics over float arrays and sampled signals. *)

val mean : float array -> float
(** Raises [Invalid_argument] on an empty array (likewise below). *)

val variance : float array -> float
(** Population variance. *)

val stddev : float array -> float
val rms : float array -> float
val min : float array -> float
val max : float array -> float
val min_max : float array -> float * float

val rms_sampled : xs:float array -> ys:float array -> float
(** Time-weighted RMS of a sampled signal over its span:
    sqrt( (1/T) * integral y^2 dt ) with trapezoidal integration.
    Raises [Invalid_argument] on empty or mismatched arrays — a
    zero-sample waveform is a caller bug, reported clearly rather than
    as an index error. *)

val percentile : float array -> float -> float
(** [percentile a p] for p in [0,100], linear interpolation between
    order statistics. *)
