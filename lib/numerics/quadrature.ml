let trapezoid_sampled ~xs ~ys =
  let n = Array.length xs in
  if n < 2 || Array.length ys <> n then
    invalid_arg "Quadrature.trapezoid_sampled: need >= 2 matched samples";
  let acc = ref 0.0 in
  for i = 0 to n - 2 do
    let dx = xs.(i + 1) -. xs.(i) in
    if dx <= 0.0 then
      invalid_arg "Quadrature.trapezoid_sampled: xs not increasing";
    acc := !acc +. (0.5 *. dx *. (ys.(i) +. ys.(i + 1)))
  done;
  !acc

let trapezoid ?(n = 256) f a b =
  if n < 1 then invalid_arg "Quadrature.trapezoid: n < 1";
  let h = (b -. a) /. float_of_int n in
  let acc = ref (0.5 *. (f a +. f b)) in
  for i = 1 to n - 1 do
    acc := !acc +. f (a +. (float_of_int i *. h))
  done;
  !acc *. h

let simpson ?(n = 256) f a b =
  let n = if n mod 2 = 0 then n else n + 1 in
  let h = (b -. a) /. float_of_int n in
  let acc = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let w = if i mod 2 = 1 then 4.0 else 2.0 in
    acc := !acc +. (w *. f (a +. (float_of_int i *. h)))
  done;
  !acc *. h /. 3.0

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 40) f a b =
  let simpson3 a fa b fb =
    let m = 0.5 *. (a +. b) in
    let fm = f m in
    (m, fm, (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb))
  in
  let rec go a fa b fb whole tol depth =
    let m, fm, _ = simpson3 a fa b fb in
    let _, _, left = simpson3 a fa m fm in
    let _, _, right = simpson3 m fm b fb in
    let delta = left +. right -. whole in
    if depth >= max_depth || Float.abs delta <= 15.0 *. tol then
      left +. right +. (delta /. 15.0)
    else
      go a fa m fm left (tol /. 2.0) (depth + 1)
      +. go m fm b fb right (tol /. 2.0) (depth + 1)
  in
  let fa = f a and fb = f b in
  let _, _, whole = simpson3 a fa b fb in
  go a fa b fb whole tol 0
