(** Piecewise-linear interpolation over sampled data.

    Waveform post-processing (threshold crossings, period detection)
    interpolates between transient-simulation samples. *)

val linear : xs:float array -> ys:float array -> float -> float
(** [linear ~xs ~ys x] interpolates at [x]; [xs] must be strictly
    increasing and the arrays the same nonzero length.  Outside the
    domain the nearest endpoint value is returned (clamped).  Raises
    [Invalid_argument] on malformed input. *)

val crossing : x0:float -> y0:float -> x1:float -> y1:float -> level:float -> float
(** Abscissa where the segment (x0,y0)-(x1,y1) crosses [level]; the
    segment must actually straddle the level. *)

val bracket_index : float array -> float -> int
(** [bracket_index xs x] is the largest [i] with [xs.(i) <= x], clamped
    to [0 .. length-2].  Binary search; [xs] strictly increasing. *)
