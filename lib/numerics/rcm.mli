(** Reverse Cuthill-McKee ordering of an undirected graph.

    Both sparse-matrix consumers of the library use it to expose the
    narrow band a chain-structured system permits regardless of how its
    unknowns were numbered: the transient engine permutes its MNA
    unknowns before choosing the banded backend, and the PRIMA reducer
    permutes the exported G matrix before factoring it.  Lifted here so
    the two share one implementation. *)

val permutation : int list array -> int array
(** [permutation adj] takes the adjacency of an undirected graph
    (vertex [u]'s neighbour list at index [u]; self-loops ignored,
    symmetry assumed) and returns [perm] with [perm.(u)] the position
    of vertex [u] in the reverse Cuthill-McKee order.  Disconnected
    graphs are handled component by component, each started from a
    lowest-degree unvisited vertex. *)

val bandwidth : int list array -> int array -> int
(** [bandwidth adj perm] is the half-bandwidth the ordering achieves:
    the largest [|perm.(u) - perm.(v)|] over the edges. *)
