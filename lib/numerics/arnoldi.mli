(** Block Arnoldi iteration: an orthonormal basis of the block Krylov
    subspace span{S, AS, A^2 S, ...} built by modified Gram-Schmidt.

    This is the subspace generator behind the PRIMA reduction: with
    A = G^-1 C and S = G^-1 B the projected system matches the first
    moments of the MNA transfer function.  [A] is only ever applied,
    never formed, so callers pass a matrix-vector product.

    Every candidate vector is orthogonalised twice against the basis
    ("twice is enough": a single MGS pass loses orthogonality exactly
    when the candidate is dominated by the existing span, which is the
    common case for the clustered spectra of RC/RLC networks).
    Candidates whose norm collapses under orthogonalisation are
    deflated — dropped, with the iteration continuing from the next
    block column — so an invariant subspace yields a smaller basis
    rather than a garbage direction. *)

val block :
  ?tol:float ->
  mul:(float array -> float array) ->
  start:float array array ->
  int ->
  float array array
(** [block ~mul ~start m] returns up to [m] orthonormal columns
    spanning the block Krylov space of the operator [mul] started from
    the columns of [start].  Fewer than [m] columns are returned when
    the space becomes invariant first (breakdown/deflation).  [tol]
    (default 1e-10) is the relative norm below which an orthogonalised
    candidate is considered dependent.  Raises [Invalid_argument] on an
    empty start block, [m < 1], or mismatched column lengths. *)
