(** One-dimensional root finding.

    The delay equation (3) of the paper is solved for its first
    threshold crossing: [bracket_first] scans for a sign change, then
    [brent] or [newton] polishes it. *)

exception No_bracket
(** Raised when a bracketing scan finds no sign change. *)

exception No_convergence of string
(** Raised when an iteration exceeds its budget. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisect f a b] finds a root of [f] in [\[a,b\]].  Requires
    [f a * f b <= 0]; raises [No_bracket] otherwise. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** Brent's method: inverse quadratic interpolation with bisection
    safeguards.  Same bracketing contract as {!bisect}. *)

val newton :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  df:(float -> float) ->
  float ->
  float
(** Damped Newton iteration from an initial guess.  Raises
    [No_convergence] when [max_iter] (default 50) is exhausted. *)

val newton_bracketed :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  df:(float -> float) ->
  float ->
  float ->
  float
(** [newton_bracketed ~f ~df lo hi]: Newton safeguarded by a bracket;
    steps leaving [\[lo,hi\]] are replaced by bisection, so convergence
    is guaranteed for continuous [f] with a sign change on the
    bracket. *)

val bracket_first :
  ?grow:float ->
  ?max_steps:int ->
  (float -> float) ->
  t0:float ->
  dt:float ->
  float * float
(** [bracket_first f ~t0 ~dt] walks forward from [t0] in steps starting
    at [dt] (multiplied by [grow], default 1.3, each step) until [f]
    changes sign, returning the bracketing interval.  Raises
    [No_bracket] after [max_steps] (default 500). *)
