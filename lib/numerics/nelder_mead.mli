(** Nelder-Mead downhill-simplex minimization.

    Serves as the derivative-free cross-check of the paper's Newton
    optimizer: both must land on the same (h, k) minimizing the delay
    per unit length, which the test suite asserts. *)

type result = {
  x : float array;  (** best vertex *)
  fx : float;  (** objective at [x] *)
  iterations : int;
  converged : bool;
}

val minimize_ctx :
  ?max_iter:int ->
  ?ftol:float ->
  ?xtol:float ->
  ?initial_step:float ->
  ctx:'a ->
  f:('a -> float array -> float) ->
  x0:float array ->
  unit ->
  result
(** [minimize_ctx ~ctx ~f ~x0 ()] runs the standard reflect / expand /
    contract / shrink iteration from a simplex built around [x0] with
    relative size [initial_step] (default 0.05), passing [ctx] — a
    precompiled evaluation workspace, e.g. a
    [Rlc_circuit.Whatif.t objective]'s workspace — to every objective
    call.  Convergence requires both the spread of objective values
    ([ftol], default 1e-12, relative) and of vertices ([xtol], default
    1e-10, relative) to collapse.  Objective values of [nan] are
    treated as +infinity, so the objective may simply reject invalid
    regions. *)

val minimize :
  ?max_iter:int ->
  ?ftol:float ->
  ?xtol:float ->
  ?initial_step:float ->
  f:(float array -> float) ->
  x0:float array ->
  unit ->
  result
(** [minimize ~f ~x0 ()] — {!minimize_ctx} with the workspace captured
    in the closure.

    @deprecated the bare-closure shape; new call sites should carry
    their evaluation context explicitly (or through a
    [Rlc_circuit.Whatif.objective] record) and use {!minimize_ctx}.
    This wrapper threads a unit context through the same
    implementation, so existing callers are bit-identical. *)
