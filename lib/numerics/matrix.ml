type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg "Matrix.create: non-positive dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let rows m = m.rows
let cols m = m.cols
let idx m i j = (i * m.cols) + j

let check_bounds m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Matrix: index (%d,%d) out of %dx%d" i j m.rows m.cols)

let get m i j =
  check_bounds m i j;
  m.data.(idx m i j)

let set m i j v =
  check_bounds m i j;
  m.data.(idx m i j) <- v

let add_to m i j v =
  check_bounds m i j;
  m.data.(idx m i j) <- m.data.(idx m i j) +. v

let identity n =
  let m = create n n in
  for k = 0 to n - 1 do
    set m k k 1.0
  done;
  m

let of_arrays a =
  let r = Array.length a in
  if r = 0 then invalid_arg "Matrix.of_arrays: empty";
  let c = Array.length a.(0) in
  if c = 0 then invalid_arg "Matrix.of_arrays: empty row";
  Array.iter
    (fun row ->
      if Array.length row <> c then invalid_arg "Matrix.of_arrays: ragged")
    a;
  let m = create r c in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      set m i j a.(i).(j)
    done
  done;
  m

let to_arrays m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let copy m = { m with data = Array.copy m.data }
let map f m = { m with data = Array.map f m.data }

let transpose m =
  let t = create m.cols m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      set t j i (get m i j)
    done
  done;
  t

let same_shape a b = a.rows = b.rows && a.cols = b.cols

let zip_with f a b =
  if not (same_shape a b) then invalid_arg "Matrix: shape mismatch";
  { a with data = Array.map2 f a.data b.data }

let add = zip_with ( +. )
let sub = zip_with ( -. )
let scale k = map (fun x -> k *. x)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: shape mismatch";
  let m = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for j = 0 to b.cols - 1 do
      let acc = ref 0.0 in
      for k = 0 to a.cols - 1 do
        acc := !acc +. (get a i k *. get b k j)
      done;
      set m i j !acc
    done
  done;
  m

let mul_vec a v =
  if a.cols <> Array.length v then invalid_arg "Matrix.mul_vec: shape mismatch";
  Array.init a.rows (fun i ->
      let acc = ref 0.0 in
      for k = 0 to a.cols - 1 do
        acc := !acc +. (get a i k *. v.(k))
      done;
      !acc)

let equal ?(tol = 0.0) a b =
  same_shape a b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let frobenius_norm m =
  Float.sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 m.data)

let max_abs m =
  Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 m.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf "  ";
      Format.fprintf ppf "%12.5g" (get m i j)
    done;
    Format.fprintf ppf "@]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
