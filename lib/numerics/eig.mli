(** Eigenvalues of small dense matrices by the QR iteration —
    the pole extractor of the model-order-reduction subsystem.

    The matrix is reduced to upper Hessenberg form by (complex)
    Householder reflections, then shifted QR steps with Wilkinson
    shifts and deflation peel off eigenvalues from the bottom.
    Working in complex arithmetic throughout keeps one code path for
    real and complex-conjugate spectra (the same trade the delay model
    makes in {!Cx}); a trailing 2x2 block is solved in closed form, so
    conjugate pairs deflate without the Francis double-shift machinery.

    Intended for the order-2..20 projected matrices of PRIMA, not for
    large spectra. *)

val eigenvalues : ?max_iter:int -> Matrix.t -> Cx.t array
(** Eigenvalues of a square real matrix, in deflation order (not
    sorted).  [max_iter] bounds the total QR sweeps (default [40 * n]).
    Raises [Invalid_argument] on a non-square input and [Failure] if
    the iteration fails to converge — unseen in practice for the
    diagonalisable matrices this project produces. *)

val eigenvalues_cx : ?max_iter:int -> Cmatrix.t -> Cx.t array
(** Same for a complex matrix. *)
