let default_rel = 1e-6

let step_for rel_step x = rel_step *. (1.0 +. Float.abs x)

let central ?(rel_step = default_rel) f x =
  let h = step_for rel_step x in
  (f (x +. h) -. f (x -. h)) /. (2.0 *. h)

let forward ?(rel_step = default_rel) f x =
  let h = step_for rel_step x in
  (f (x +. h) -. f x) /. h

let partial ?(rel_step = default_rel) f x i =
  let h = step_for rel_step x.(i) in
  let at v =
    let x' = Array.copy x in
    x'.(i) <- v;
    f x'
  in
  (at (x.(i) +. h) -. at (x.(i) -. h)) /. (2.0 *. h)

let gradient ?rel_step f x =
  Array.init (Array.length x) (fun i -> partial ?rel_step f x i)

let jacobian ?(rel_step = default_rel) f x =
  let n = Array.length x in
  let fx = f x in
  let m = Array.length fx in
  let jac = Matrix.create m n in
  for j = 0 to n - 1 do
    let h = step_for rel_step x.(j) in
    let at v =
      let x' = Array.copy x in
      x'.(j) <- v;
      f x'
    in
    let fp = at (x.(j) +. h) and fm = at (x.(j) -. h) in
    for i = 0 to m - 1 do
      Matrix.set jac i j ((fp.(i) -. fm.(i)) /. (2.0 *. h))
    done
  done;
  jac
