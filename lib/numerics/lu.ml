type t = {
  lu : Matrix.t; (* combined L (unit diagonal, below) and U (on/above) *)
  perm : int array; (* row permutation *)
  sign : float; (* determinant sign of the permutation *)
}

exception Singular

let m_decompose = Rlc_instr.Metrics.counter "lu.decompose"
let m_solve = Rlc_instr.Metrics.counter "lu.solve"

let size f = Array.length f.perm

(* Doolittle factorisation with partial (row) pivoting. *)
let decompose ?(pivot_tol = 1e-300) a =
  Rlc_instr.Metrics.incr m_decompose;
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Lu.decompose: matrix not square";
  let lu = Matrix.copy a in
  let perm = Array.init n (fun k -> k) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* choose pivot row *)
    let pivot_row = ref k in
    let pivot_val = ref (Float.abs (Matrix.get lu k k)) in
    for r = k + 1 to n - 1 do
      let v = Float.abs (Matrix.get lu r k) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := r
      end
    done;
    if !pivot_val <= pivot_tol then raise Singular;
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = Matrix.get lu k j in
        Matrix.set lu k j (Matrix.get lu !pivot_row j);
        Matrix.set lu !pivot_row j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let pivot = Matrix.get lu k k in
    for r = k + 1 to n - 1 do
      let factor = Matrix.get lu r k /. pivot in
      Matrix.set lu r k factor;
      for j = k + 1 to n - 1 do
        Matrix.set lu r j (Matrix.get lu r j -. (factor *. Matrix.get lu k j))
      done
    done
  done;
  { lu; perm; sign = !sign }

let solve_into f ~b ~x =
  Rlc_instr.Metrics.incr m_solve;
  let n = size f in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Lu.solve_into: size mismatch";
  if x == b then invalid_arg "Lu.solve_into: b and x must be distinct";
  for k = 0 to n - 1 do
    x.(k) <- b.(f.perm.(k))
  done;
  (* forward substitution: L y = P b *)
  for k = 1 to n - 1 do
    let acc = ref x.(k) in
    for j = 0 to k - 1 do
      acc := !acc -. (Matrix.get f.lu k j *. x.(j))
    done;
    x.(k) <- !acc
  done;
  (* back substitution: U x = y *)
  for k = n - 1 downto 0 do
    let acc = ref x.(k) in
    for j = k + 1 to n - 1 do
      acc := !acc -. (Matrix.get f.lu k j *. x.(j))
    done;
    x.(k) <- !acc /. Matrix.get f.lu k k
  done

let solve f b =
  Rlc_instr.Metrics.incr m_solve;
  let n = size f in
  if Array.length b <> n then invalid_arg "Lu.solve: size mismatch";
  let x = Array.init n (fun k -> b.(f.perm.(k))) in
  (* forward substitution: L y = P b *)
  for k = 1 to n - 1 do
    let acc = ref x.(k) in
    for j = 0 to k - 1 do
      acc := !acc -. (Matrix.get f.lu k j *. x.(j))
    done;
    x.(k) <- !acc
  done;
  (* back substitution: U x = y *)
  for k = n - 1 downto 0 do
    let acc = ref x.(k) in
    for j = k + 1 to n - 1 do
      acc := !acc -. (Matrix.get f.lu k j *. x.(j))
    done;
    x.(k) <- !acc /. Matrix.get f.lu k k
  done;
  x

let solve_matrix ?pivot_tol a b = solve (decompose ?pivot_tol a) b

let det f =
  let n = size f in
  let acc = ref f.sign in
  for k = 0 to n - 1 do
    acc := !acc *. Matrix.get f.lu k k
  done;
  !acc

let inverse f =
  let n = size f in
  let inv = Matrix.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let col = solve f e in
    for i = 0 to n - 1 do
      Matrix.set inv i j col.(i)
    done
  done;
  inv
