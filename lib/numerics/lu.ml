type t = {
  lu : Matrix.t; (* combined L (unit diagonal, below) and U (on/above) *)
  perm : int array; (* row permutation *)
  sign : float; (* determinant sign of the permutation *)
}

exception Singular

let m_decompose = Rlc_instr.Metrics.counter "lu.decompose"
let m_solve = Rlc_instr.Metrics.counter "lu.solve"

let size f = Array.length f.perm

(* Health probes (pivot growth = max |U| over max |A|, rcond proxy =
   min over max |U diagonal|) are cheap by-products of the factor but
   still O(n^2) reads, so they are computed only while recording. *)
let probe_decompose ~amax lu n =
  let umax = ref 0.0 and dmin = ref infinity and dmax = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let v = Float.abs (Matrix.get lu i j) in
      if v > !umax then umax := v
    done;
    let d = Float.abs (Matrix.get lu i i) in
    if d < !dmin then dmin := d;
    if d > !dmax then dmax := d
  done;
  let growth = if amax > 0.0 then !umax /. amax else 1.0 in
  let rcond = if !dmax > 0.0 then !dmin /. !dmax else 0.0 in
  ignore (Rlc_instr.Health.observe ~kind:"lu" ~growth ~rcond ())

(* Doolittle factorisation with partial (row) pivoting. *)
let decompose ?(pivot_tol = 1e-300) a =
  Rlc_instr.Metrics.incr m_decompose;
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Lu.decompose: matrix not square";
  let probing = Rlc_instr.Metrics.recording () in
  let amax = ref 0.0 in
  if probing then
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let v = Float.abs (Matrix.get a i j) in
        if v > !amax then amax := v
      done
    done;
  let lu = Matrix.copy a in
  let perm = Array.init n (fun k -> k) in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* choose pivot row *)
    let pivot_row = ref k in
    let pivot_val = ref (Float.abs (Matrix.get lu k k)) in
    for r = k + 1 to n - 1 do
      let v = Float.abs (Matrix.get lu r k) in
      if v > !pivot_val then begin
        pivot_val := v;
        pivot_row := r
      end
    done;
    if !pivot_val <= pivot_tol then begin
      Rlc_instr.Health.failure ~kind:"lu" ~reason:"singular pivot";
      raise Singular
    end;
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let tmp = Matrix.get lu k j in
        Matrix.set lu k j (Matrix.get lu !pivot_row j);
        Matrix.set lu !pivot_row j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- tmp;
      sign := -. !sign
    end;
    let pivot = Matrix.get lu k k in
    for r = k + 1 to n - 1 do
      let factor = Matrix.get lu r k /. pivot in
      Matrix.set lu r k factor;
      for j = k + 1 to n - 1 do
        Matrix.set lu r j (Matrix.get lu r j -. (factor *. Matrix.get lu k j))
      done
    done
  done;
  if probing then probe_decompose ~amax:!amax lu n;
  { lu; perm; sign = !sign }

let solve_into f ~b ~x =
  Rlc_instr.Metrics.incr m_solve;
  let n = size f in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Lu.solve_into: size mismatch";
  if x == b then invalid_arg "Lu.solve_into: b and x must be distinct";
  for k = 0 to n - 1 do
    x.(k) <- b.(f.perm.(k))
  done;
  (* forward substitution: L y = P b *)
  for k = 1 to n - 1 do
    let acc = ref x.(k) in
    for j = 0 to k - 1 do
      acc := !acc -. (Matrix.get f.lu k j *. x.(j))
    done;
    x.(k) <- !acc
  done;
  (* back substitution: U x = y *)
  for k = n - 1 downto 0 do
    let acc = ref x.(k) in
    for j = k + 1 to n - 1 do
      acc := !acc -. (Matrix.get f.lu k j *. x.(j))
    done;
    x.(k) <- !acc /. Matrix.get f.lu k k
  done

let solve f b =
  Rlc_instr.Metrics.incr m_solve;
  let n = size f in
  if Array.length b <> n then invalid_arg "Lu.solve: size mismatch";
  let x = Array.init n (fun k -> b.(f.perm.(k))) in
  (* forward substitution: L y = P b *)
  for k = 1 to n - 1 do
    let acc = ref x.(k) in
    for j = 0 to k - 1 do
      acc := !acc -. (Matrix.get f.lu k j *. x.(j))
    done;
    x.(k) <- !acc
  done;
  (* back substitution: U x = y *)
  for k = n - 1 downto 0 do
    let acc = ref x.(k) in
    for j = k + 1 to n - 1 do
      acc := !acc -. (Matrix.get f.lu k j *. x.(j))
    done;
    x.(k) <- !acc /. Matrix.get f.lu k k
  done;
  x

let solve_matrix ?pivot_tol a b = solve (decompose ?pivot_tol a) b

let det f =
  let n = size f in
  let acc = ref f.sign in
  for k = 0 to n - 1 do
    acc := !acc *. Matrix.get f.lu k k
  done;
  !acc

let inverse f =
  let n = size f in
  let inv = Matrix.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let col = solve f e in
    for i = 0 to n - 1 do
      Matrix.set inv i j col.(i)
    done
  done;
  inv
