(* General sparse LU, Gilbert-Peierls style.

   The factorisation is left-looking over columns: the pattern of each
   column of L and U is the reach of the column's nonzeros in the
   directed graph of the L computed so far (one depth-first search per
   column, O(flops) total), the numeric update applies exactly the
   columns that pattern names, and the pivot is chosen among the
   not-yet-pivotal rows of the pattern with threshold partial pivoting
   that prefers the diagonal (MNA systems carry structurally zero
   diagonals on the source/branch rows, so pure diagonal pivoting is
   not an option, while unrestricted partial pivoting destroys the
   fill the min-degree ordering bought — the threshold buys stability
   without the fill).

   The split that matters to the callers: {!factor} discovers the
   pattern and the pivot sequence (the *symbolic* analysis) while
   computing the first numeric factorisation; {!refactor} replays that
   analysis against new values in the same stamped pattern — no graph
   search, no pivot search, just the recorded update sequence.  An AC
   sweep analyses once at its first frequency and refactors at every
   other point; the transient engine analyses once per netlist and
   refactors per (method, dt).  A replayed pivot can of course go bad
   on values far from the analysed ones, so {!refactor} watches the
   multiplier growth and raises {!Repivot} for the caller to fall back
   to a fresh {!factor}.

   Storage is compressed-column throughout: L strictly lower with unit
   diagonal implicit, U strictly upper per column in the exact order
   the updates were applied (topological for the analysed pattern,
   which is what makes the replay a straight array walk), diagonal of
   U separate.  Row indices inside the factors live in *pivot*
   coordinates (position in the elimination sequence); {!solve_into}
   carries the row permutation.  The complex mirror ({!cfactor} /
   {!crefactor} / {!csolve_into}) duplicates the code over split
   re/im arrays rather than an array of records, like {!Cbanded}. *)

exception Singular
exception Repivot

(* ------------------------------------------------------------------ *)
(* compressed-column inputs                                            *)
(* ------------------------------------------------------------------ *)

type csc = {
  n : int;
  colptr : int array;
  rowind : int array;
  values : float array;
}

type ccsc = {
  cn : int;
  ccolptr : int array;
  crowind : int array;
  vre : float array;
  vim : float array;
}

(* growable triplet buffers *)
type 'a buf = { mutable a : 'a array; mutable len : int }

let bmake z = { a = Array.make 64 z; len = 0 }

let bpush b x =
  if b.len = Array.length b.a then begin
    let c = Array.make (2 * b.len) b.a.(0) in
    Array.blit b.a 0 c 0 b.len;
    b.a <- c
  end;
  b.a.(b.len) <- x;
  b.len <- b.len + 1

(* triplets -> CSC with duplicates accumulated; within a column the
   entries keep first-occurrence order, so the pattern is a pure
   function of the stamp sequence (refactor relies on that). *)
let compress ~n ~rows ~cols ~push_vals =
  let nnz_raw = rows.len in
  let cnt = Array.make (n + 1) 0 in
  for k = 0 to nnz_raw - 1 do
    let j = cols.a.(k) in
    cnt.(j + 1) <- cnt.(j + 1) + 1
  done;
  for j = 0 to n - 1 do
    cnt.(j + 1) <- cnt.(j + 1) + cnt.(j)
  done;
  let colptr_raw = Array.copy cnt in
  let order = Array.make (Int.max nnz_raw 1) 0 in
  let next = Array.copy cnt in
  for k = 0 to nnz_raw - 1 do
    let j = cols.a.(k) in
    order.(next.(j)) <- k;
    next.(j) <- next.(j) + 1
  done;
  (* dedup per column with a dense slot map *)
  let slot = Array.make n (-1) in
  let colptr = Array.make (n + 1) 0 in
  let rowind = bmake 0 in
  for j = 0 to n - 1 do
    colptr.(j) <- rowind.len;
    for p = colptr_raw.(j) to colptr_raw.(j + 1) - 1 do
      let k = order.(p) in
      let i = rows.a.(k) in
      if slot.(i) >= colptr.(j) && slot.(i) < rowind.len && rowind.a.(slot.(i)) = i
      then push_vals ~dst:slot.(i) ~src:k
      else begin
        slot.(i) <- rowind.len;
        bpush rowind i;
        push_vals ~dst:(-1) ~src:k
      end
    done
  done;
  colptr.(n) <- rowind.len;
  (colptr, Array.sub rowind.a 0 rowind.len)

let of_fill ~n fill =
  if n <= 0 then invalid_arg "Sparse.of_fill: n <= 0";
  let rows = bmake 0 and cols = bmake 0 and vals = bmake 0.0 in
  fill (fun i j v ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Sparse.of_fill: index out of range";
      bpush rows i;
      bpush cols j;
      bpush vals v);
  let out = bmake 0.0 in
  let colptr, rowind =
    compress ~n ~rows ~cols ~push_vals:(fun ~dst ~src ->
        if dst >= 0 then out.a.(dst) <- out.a.(dst) +. vals.a.(src)
        else bpush out vals.a.(src))
  in
  { n; colptr; rowind; values = Array.sub out.a 0 out.len }

let cof_fill ~n fill =
  if n <= 0 then invalid_arg "Sparse.cof_fill: n <= 0";
  let rows = bmake 0 and cols = bmake 0 in
  let vre = bmake 0.0 and vim = bmake 0.0 in
  fill (fun i j (v : Cx.t) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Sparse.cof_fill: index out of range";
      bpush rows i;
      bpush cols j;
      bpush vre v.Cx.re;
      bpush vim v.Cx.im);
  let ore = bmake 0.0 and oim = bmake 0.0 in
  let colptr, rowind =
    compress ~n ~rows ~cols ~push_vals:(fun ~dst ~src ->
        if dst >= 0 then begin
          ore.a.(dst) <- ore.a.(dst) +. vre.a.(src);
          oim.a.(dst) <- oim.a.(dst) +. vim.a.(src)
        end
        else begin
          bpush ore vre.a.(src);
          bpush oim vim.a.(src)
        end)
  in
  {
    cn = n;
    ccolptr = colptr;
    crowind = rowind;
    vre = Array.sub ore.a 0 ore.len;
    vim = Array.sub oim.a 0 oim.len;
  }

let nnz a = a.colptr.(a.n)
let cnnz a = a.ccolptr.(a.cn)

(* ------------------------------------------------------------------ *)
(* symbolic structure (shared by real and complex factors)             *)
(* ------------------------------------------------------------------ *)

type symbolic = {
  n : int;
  pinv : int array;  (* input row -> pivot position *)
  prow : int array;  (* pivot position -> input row *)
  lp : int array;  (* L colptr, n+1; row indices in pivot coords, > j *)
  li : int array;
  up : int array;  (* U colptr, n+1; entries in applied (topological)
                      order, pivot coords < j; diagonal separate *)
  ui : int array;
  annz : int;  (* nnz of the analysed input, a cheap pattern check *)
}

let sym_n s = s.n
let sym_lu_nnz s = s.lp.(s.n) + s.up.(s.n) + s.n

(* reach of column-j pattern in the graph of L-so-far; non-recursive
   DFS after cs_dfs.  [li_buf]/[lp_live] describe L columns discovered
   so far with *input* row indices; [mark] carries stamp [j + 1].
   Returns [top]; the pattern sits in [xi.(top .. n-1)] in topological
   order. *)
let reach ~n ~acolptr ~arowind ~j ~pinv ~lp_live ~li_buf ~mark ~xi ~pstack =
  let top = ref n in
  let head = ref 0 in
  let stamp = j + 1 in
  for p = acolptr.(j) to acolptr.(j + 1) - 1 do
    let root = arowind.(p) in
    if mark.(root) <> stamp then begin
      (* DFS from root *)
      head := 0;
      xi.(0) <- root;
      while !head >= 0 do
        let i = xi.(!head) in
        if mark.(i) <> stamp then begin
          mark.(i) <- stamp;
          pstack.(!head) <- (if pinv.(i) < 0 then 0 else lp_live.(pinv.(i)))
        end;
        let col = pinv.(i) in
        let pend = if col < 0 then 0 else lp_live.(col + 1) in
        let advanced = ref false in
        let q = ref pstack.(!head) in
        while (not !advanced) && !q < pend do
          let child = li_buf.(!q) in
          incr q;
          if mark.(child) <> stamp then begin
            pstack.(!head) <- !q;
            incr head;
            xi.(!head) <- child;
            advanced := true
          end
        done;
        if not !advanced then begin
          (* all children done: pop to output *)
          decr head;
          decr top;
          xi.(!top) <- i
        end
      done
    end
  done;
  !top

(* ------------------------------------------------------------------ *)
(* real factorisation                                                  *)
(* ------------------------------------------------------------------ *)

type t = {
  sym : symbolic;
  lx : float array;  (* multipliers, aligned with sym.li *)
  ux : float array;  (* aligned with sym.ui *)
  ud : float array;  (* diagonal of U, pivot order *)
}

let symbolic t = t.sym
let lu_nnz t = sym_lu_nnz t.sym

let factor ?(pivot_tol = 0.001) (a : csc) =
  let n = a.n in
  let pinv = Array.make n (-1) in
  let prow = Array.make n (-1) in
  let lp_live = Array.make (n + 1) 0 in
  let up = Array.make (n + 1) 0 in
  let li = bmake 0 and lx = bmake 0.0 in
  let ui = bmake 0 and ux = bmake 0.0 in
  let ud = Array.make n 0.0 in
  let x = Array.make n 0.0 in
  let xi = Array.make n 0 in
  let pstack = Array.make n 0 in
  let mark = Array.make n 0 in
  for j = 0 to n - 1 do
    let top =
      reach ~n ~acolptr:a.colptr ~arowind:a.rowind ~j ~pinv ~lp_live
        ~li_buf:li.a ~mark ~xi ~pstack
    in
    (* numeric: clear, scatter, apply in topological order *)
    for p = top to n - 1 do
      x.(xi.(p)) <- 0.0
    done;
    for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      x.(a.rowind.(p)) <- a.values.(p)
    done;
    for p = top to n - 1 do
      let i = xi.(p) in
      let t = pinv.(i) in
      if t >= 0 then begin
        let xt = x.(i) in
        bpush ui t;
        bpush ux xt;
        for q = lp_live.(t) to lp_live.(t + 1) - 1 do
          let r = li.a.(q) in
          x.(r) <- x.(r) -. (lx.a.(q) *. xt)
        done
      end
    done;
    (* pivot among the non-pivotal pattern rows *)
    let amax = ref 0.0 and ipiv = ref (-1) in
    for p = top to n - 1 do
      let i = xi.(p) in
      if pinv.(i) < 0 then begin
        let m = Float.abs x.(i) in
        if m > !amax then begin
          amax := m;
          ipiv := i
        end
      end
    done;
    if !ipiv < 0 || not (Float.is_finite !amax) || !amax <= 1e-300 then begin
      Rlc_instr.Health.failure ~kind:"sparse" ~reason:"singular pivot";
      raise Singular
    end;
    (* threshold preference for the diagonal *)
    if
      j <> !ipiv && pinv.(j) < 0 && mark.(j) = j + 1
      && Float.abs x.(j) >= pivot_tol *. !amax
      && Float.abs x.(j) > 1e-300
    then ipiv := j;
    let pivot = x.(!ipiv) in
    ud.(j) <- pivot;
    pinv.(!ipiv) <- j;
    prow.(j) <- !ipiv;
    for p = top to n - 1 do
      let i = xi.(p) in
      if pinv.(i) < 0 then begin
        bpush li i;
        bpush lx (x.(i) /. pivot)
      end;
      x.(i) <- 0.0
    done;
    lp_live.(j + 1) <- li.len;
    up.(j + 1) <- ui.len
  done;
  (* remap L row indices into pivot coordinates *)
  let lin = Array.sub li.a 0 li.len in
  for k = 0 to li.len - 1 do
    lin.(k) <- pinv.(lin.(k))
  done;
  let sym =
    {
      n;
      pinv;
      prow;
      lp = lp_live;
      li = lin;
      up;
      ui = Array.sub ui.a 0 ui.len;
      annz = nnz a;
    }
  in
  if Rlc_instr.Metrics.recording () then begin
    let vmax arr len =
      let m = ref 0.0 in
      for k = 0 to len - 1 do
        let v = Float.abs arr.(k) in
        if v > !m then m := v
      done;
      !m
    in
    let amax = vmax a.values (Array.length a.values) in
    let umax = Float.max (vmax ux.a ux.len) (vmax ud n) in
    let dmin = ref infinity and dmax = ref 0.0 in
    Array.iter
      (fun d ->
        let d = Float.abs d in
        if d < !dmin then dmin := d;
        if d > !dmax then dmax := d)
      ud;
    let growth = if amax > 0.0 then umax /. amax else 1.0 in
    let rcond = if !dmax > 0.0 then !dmin /. !dmax else 0.0 in
    ignore (Rlc_instr.Health.observe ~kind:"sparse" ~growth ~rcond ())
  end;
  { sym; lx = Array.sub lx.a 0 lx.len; ux = Array.sub ux.a 0 ux.len; ud }

let refactor ?(growth_limit = 1e8) sym (a : csc) =
  let n = sym.n in
  if a.n <> n || nnz a <> sym.annz then
    invalid_arg "Sparse.refactor: pattern mismatch";
  let { pinv; lp; li; up; ui; _ } = sym in
  let lx = Array.make (Array.length li) 0.0 in
  let ux = Array.make (Array.length ui) 0.0 in
  let ud = Array.make n 0.0 in
  let x = Array.make n 0.0 in
  for j = 0 to n - 1 do
    (* the column pattern in pivot coords is ui-col ∪ {j} ∪ li-col,
       and x is kept zero outside it, so scatter needs no clearing *)
    for p = a.colptr.(j) to a.colptr.(j + 1) - 1 do
      x.(pinv.(a.rowind.(p))) <- x.(pinv.(a.rowind.(p))) +. a.values.(p)
    done;
    for k = up.(j) to up.(j + 1) - 1 do
      let t = ui.(k) in
      let xt = x.(t) in
      ux.(k) <- xt;
      x.(t) <- 0.0;
      if xt <> 0.0 then
        for q = lp.(t) to lp.(t + 1) - 1 do
          let r = li.(q) in
          x.(r) <- x.(r) -. (lx.(q) *. xt)
        done
    done;
    let pivot = x.(j) in
    x.(j) <- 0.0;
    if (not (Float.is_finite pivot)) || Float.abs pivot <= 1e-300 then begin
      (* leave x clean for the caller's retry *)
      for q = lp.(j) to lp.(j + 1) - 1 do
        x.(li.(q)) <- 0.0
      done;
      if Float.is_finite pivot then raise Repivot else raise Singular
    end;
    ud.(j) <- pivot;
    let lmax = ref 0.0 in
    for q = lp.(j) to lp.(j + 1) - 1 do
      let r = li.(q) in
      let m = x.(r) /. pivot in
      lx.(q) <- m;
      x.(r) <- 0.0;
      let am = Float.abs m in
      if am > !lmax then lmax := am
    done;
    if (not (Float.is_finite !lmax)) || !lmax > growth_limit then raise Repivot
  done;
  { sym; lx; ux; ud }

let solve_into t ~b ~x =
  let { n; prow; lp; li; up; ui; _ } = t.sym in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Sparse.solve_into: size mismatch";
  if b == x then invalid_arg "Sparse.solve_into: b and x must be distinct";
  for k = 0 to n - 1 do
    x.(k) <- b.(prow.(k))
  done;
  for k = 0 to n - 1 do
    let xk = x.(k) in
    if xk <> 0.0 then
      for q = lp.(k) to lp.(k + 1) - 1 do
        x.(li.(q)) <- x.(li.(q)) -. (t.lx.(q) *. xk)
      done
  done;
  for k = n - 1 downto 0 do
    let xk = x.(k) /. t.ud.(k) in
    x.(k) <- xk;
    if xk <> 0.0 then
      for q = up.(k) to up.(k + 1) - 1 do
        x.(ui.(q)) <- x.(ui.(q)) -. (t.ux.(q) *. xk)
      done
  done

(* ------------------------------------------------------------------ *)
(* complex factorisation (split re/im arrays, Cbanded idiom)           *)
(* ------------------------------------------------------------------ *)

type ct = {
  csym : symbolic;
  lre : float array;
  lim : float array;
  ure : float array;
  uim : float array;
  udre : float array;
  udim : float array;
}

let csymbolic t = t.csym
let clu_nnz t = sym_lu_nnz t.csym

let cfactor ?(pivot_tol = 0.001) (a : ccsc) =
  let n = a.cn in
  let pinv = Array.make n (-1) in
  let prow = Array.make n (-1) in
  let lp_live = Array.make (n + 1) 0 in
  let up = Array.make (n + 1) 0 in
  let li = bmake 0 in
  let lre = bmake 0.0 and lim = bmake 0.0 in
  let ui = bmake 0 in
  let ure = bmake 0.0 and uim = bmake 0.0 in
  let udre = Array.make n 0.0 and udim = Array.make n 0.0 in
  let xre = Array.make n 0.0 and xim = Array.make n 0.0 in
  let xi = Array.make n 0 in
  let pstack = Array.make n 0 in
  let mark = Array.make n 0 in
  let tol2 = pivot_tol *. pivot_tol in
  for j = 0 to n - 1 do
    let top =
      reach ~n ~acolptr:a.ccolptr ~arowind:a.crowind ~j ~pinv ~lp_live
        ~li_buf:li.a ~mark ~xi ~pstack
    in
    for p = top to n - 1 do
      xre.(xi.(p)) <- 0.0;
      xim.(xi.(p)) <- 0.0
    done;
    for p = a.ccolptr.(j) to a.ccolptr.(j + 1) - 1 do
      xre.(a.crowind.(p)) <- a.vre.(p);
      xim.(a.crowind.(p)) <- a.vim.(p)
    done;
    for p = top to n - 1 do
      let i = xi.(p) in
      let t = pinv.(i) in
      if t >= 0 then begin
        let xtr = xre.(i) and xti = xim.(i) in
        bpush ui t;
        bpush ure xtr;
        bpush uim xti;
        for q = lp_live.(t) to lp_live.(t + 1) - 1 do
          let r = li.a.(q) in
          let lr = lre.a.(q) and lm = lim.a.(q) in
          xre.(r) <- xre.(r) -. ((lr *. xtr) -. (lm *. xti));
          xim.(r) <- xim.(r) -. ((lr *. xti) +. (lm *. xtr))
        done
      end
    done;
    let amax2 = ref 0.0 and ipiv = ref (-1) in
    for p = top to n - 1 do
      let i = xi.(p) in
      if pinv.(i) < 0 then begin
        let m2 = (xre.(i) *. xre.(i)) +. (xim.(i) *. xim.(i)) in
        if m2 > !amax2 then begin
          amax2 := m2;
          ipiv := i
        end
      end
    done;
    if !ipiv < 0 || not (Float.is_finite !amax2) || !amax2 <= 1e-300 then begin
      Rlc_instr.Health.failure ~kind:"csparse" ~reason:"singular pivot";
      raise Singular
    end;
    if j <> !ipiv && pinv.(j) < 0 && mark.(j) = j + 1 then begin
      let d2 = (xre.(j) *. xre.(j)) +. (xim.(j) *. xim.(j)) in
      if d2 >= tol2 *. !amax2 && d2 > 1e-300 then ipiv := j
    end;
    let pr = xre.(!ipiv) and pi = xim.(!ipiv) in
    udre.(j) <- pr;
    udim.(j) <- pi;
    pinv.(!ipiv) <- j;
    prow.(j) <- !ipiv;
    let den = (pr *. pr) +. (pi *. pi) in
    let invr = pr /. den and invi = -.pi /. den in
    for p = top to n - 1 do
      let i = xi.(p) in
      if pinv.(i) < 0 then begin
        bpush li i;
        bpush lre ((xre.(i) *. invr) -. (xim.(i) *. invi));
        bpush lim ((xre.(i) *. invi) +. (xim.(i) *. invr))
      end;
      xre.(i) <- 0.0;
      xim.(i) <- 0.0
    done;
    lp_live.(j + 1) <- li.len;
    up.(j + 1) <- ui.len
  done;
  let lin = Array.sub li.a 0 li.len in
  for k = 0 to li.len - 1 do
    lin.(k) <- pinv.(lin.(k))
  done;
  let csym =
    {
      n;
      pinv;
      prow;
      lp = lp_live;
      li = lin;
      up;
      ui = Array.sub ui.a 0 ui.len;
      annz = cnnz a;
    }
  in
  if Rlc_instr.Metrics.recording () then begin
    let vmax2 re im len =
      let m = ref 0.0 in
      for k = 0 to len - 1 do
        let v = (re.(k) *. re.(k)) +. (im.(k) *. im.(k)) in
        if v > !m then m := v
      done;
      Float.sqrt !m
    in
    let amax = vmax2 a.vre a.vim (Array.length a.vre) in
    let umax =
      Float.max (vmax2 ure.a uim.a ure.len) (vmax2 udre udim n)
    in
    let dmin = ref infinity and dmax = ref 0.0 in
    for k = 0 to n - 1 do
      let d = Float.hypot udre.(k) udim.(k) in
      if d < !dmin then dmin := d;
      if d > !dmax then dmax := d
    done;
    let growth = if amax > 0.0 then umax /. amax else 1.0 in
    let rcond = if !dmax > 0.0 then !dmin /. !dmax else 0.0 in
    ignore (Rlc_instr.Health.observe ~kind:"csparse" ~growth ~rcond ())
  end;
  {
    csym;
    lre = Array.sub lre.a 0 lre.len;
    lim = Array.sub lim.a 0 lim.len;
    ure = Array.sub ure.a 0 ure.len;
    uim = Array.sub uim.a 0 uim.len;
    udre;
    udim;
  }

let crefactor ?(growth_limit = 1e8) sym (a : ccsc) =
  let n = sym.n in
  if a.cn <> n || cnnz a <> sym.annz then
    invalid_arg "Sparse.crefactor: pattern mismatch";
  let { pinv; lp; li; up; ui; _ } = sym in
  let lre = Array.make (Array.length li) 0.0 in
  let lim = Array.make (Array.length li) 0.0 in
  let ure = Array.make (Array.length ui) 0.0 in
  let uim = Array.make (Array.length ui) 0.0 in
  let udre = Array.make n 0.0 and udim = Array.make n 0.0 in
  let xre = Array.make n 0.0 and xim = Array.make n 0.0 in
  for j = 0 to n - 1 do
    for p = a.ccolptr.(j) to a.ccolptr.(j + 1) - 1 do
      let r = pinv.(a.crowind.(p)) in
      xre.(r) <- xre.(r) +. a.vre.(p);
      xim.(r) <- xim.(r) +. a.vim.(p)
    done;
    for k = up.(j) to up.(j + 1) - 1 do
      let t = ui.(k) in
      let xtr = xre.(t) and xti = xim.(t) in
      ure.(k) <- xtr;
      uim.(k) <- xti;
      xre.(t) <- 0.0;
      xim.(t) <- 0.0;
      if xtr <> 0.0 || xti <> 0.0 then
        for q = lp.(t) to lp.(t + 1) - 1 do
          let r = li.(q) in
          let lr = lre.(q) and lm = lim.(q) in
          xre.(r) <- xre.(r) -. ((lr *. xtr) -. (lm *. xti));
          xim.(r) <- xim.(r) -. ((lr *. xti) +. (lm *. xtr))
        done
    done;
    let pr = xre.(j) and pi = xim.(j) in
    xre.(j) <- 0.0;
    xim.(j) <- 0.0;
    let den = (pr *. pr) +. (pi *. pi) in
    if (not (Float.is_finite den)) || den <= 1e-300 then begin
      for q = lp.(j) to lp.(j + 1) - 1 do
        xre.(li.(q)) <- 0.0;
        xim.(li.(q)) <- 0.0
      done;
      if Float.is_finite den then raise Repivot else raise Singular
    end;
    udre.(j) <- pr;
    udim.(j) <- pi;
    let invr = pr /. den and invi = -.pi /. den in
    let lmax2 = ref 0.0 in
    for q = lp.(j) to lp.(j + 1) - 1 do
      let r = li.(q) in
      let mr = (xre.(r) *. invr) -. (xim.(r) *. invi) in
      let mi = (xre.(r) *. invi) +. (xim.(r) *. invr) in
      lre.(q) <- mr;
      lim.(q) <- mi;
      xre.(r) <- 0.0;
      xim.(r) <- 0.0;
      let m2 = (mr *. mr) +. (mi *. mi) in
      if m2 > !lmax2 then lmax2 := m2
    done;
    if (not (Float.is_finite !lmax2)) || !lmax2 > growth_limit *. growth_limit
    then raise Repivot
  done;
  { csym = sym; lre; lim; ure; uim; udre; udim }

let csolve_into t ~b ~x =
  let { n; prow; lp; li; up; ui; _ } = t.csym in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Sparse.csolve_into: size mismatch";
  if b == x then invalid_arg "Sparse.csolve_into: b and x must be distinct";
  for k = 0 to n - 1 do
    x.(k) <- (b.(prow.(k)) : Cx.t)
  done;
  for k = 0 to n - 1 do
    let xk = x.(k) in
    if xk.Cx.re <> 0.0 || xk.Cx.im <> 0.0 then
      for q = lp.(k) to lp.(k + 1) - 1 do
        let r = li.(q) in
        let xr = x.(r) in
        x.(r) <-
          Cx.make
            (xr.Cx.re -. ((t.lre.(q) *. xk.Cx.re) -. (t.lim.(q) *. xk.Cx.im)))
            (xr.Cx.im -. ((t.lre.(q) *. xk.Cx.im) +. (t.lim.(q) *. xk.Cx.re)))
      done
  done;
  for k = n - 1 downto 0 do
    let xk = x.(k) in
    let pr = t.udre.(k) and pi = t.udim.(k) in
    let den = (pr *. pr) +. (pi *. pi) in
    let vr = ((xk.Cx.re *. pr) +. (xk.Cx.im *. pi)) /. den in
    let vi = ((xk.Cx.im *. pr) -. (xk.Cx.re *. pi)) /. den in
    x.(k) <- Cx.make vr vi;
    if vr <> 0.0 || vi <> 0.0 then
      for q = up.(k) to up.(k + 1) - 1 do
        let r = ui.(q) in
        let xr = x.(r) in
        x.(r) <-
          Cx.make
            (xr.Cx.re -. ((t.ure.(q) *. vr) -. (t.uim.(q) *. vi)))
            (xr.Cx.im -. ((t.ure.(q) *. vi) +. (t.uim.(q) *. vr)))
      done
  done
