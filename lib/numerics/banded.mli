(** Banded linear systems: band storage, banded LU with partial
    pivoting (LAPACK [dgbtrf]-style), and solves.

    A matrix with [kl] subdiagonals and [ku] superdiagonals is held in
    the classic band layout with [kl] extra workspace superdiagonals so
    that row pivoting never falls outside the storage.  For the
    ladder-structured MNA systems of the transient engine ([kl], [ku]
    of 2-3 regardless of length) this turns the per-factorisation cost
    from O(m^3) into O(m·kl·(kl+ku)) and the per-step solve from
    O(m^2) into O(m·(kl+ku)). *)

type storage
(** An m x m banded matrix being assembled (mutable). *)

type t
(** A pivoted banded factorisation, ready to solve. *)

exception Singular
(** Raised when a pivot falls below the singularity threshold. *)

val create_storage : n:int -> kl:int -> ku:int -> storage
(** Zero matrix of order [n] with [kl] sub- and [ku] superdiagonals.
    Raises [Invalid_argument] when [n <= 0], a bandwidth is negative,
    or a bandwidth is [>= n]. *)

val storage_n : storage -> int
val storage_kl : storage -> int
val storage_ku : storage -> int

val get : storage -> int -> int -> float
(** [get s i j] is the (i,j) entry; entries outside the band are 0.
    Raises [Invalid_argument] out of the n x n bounds. *)

val set : storage -> int -> int -> float -> unit
val add_to : storage -> int -> int -> float -> unit
(** Write / accumulate inside the band.  Raise [Invalid_argument] for
    an entry strictly outside the declared band. *)

val to_dense : storage -> Matrix.t

val bandwidth : Matrix.t -> int * int
(** [(kl, ku)] of the nonzero pattern of a square dense matrix:
    the largest sub- and superdiagonal holding a nonzero (0, 0 for a
    diagonal or zero matrix). *)

val of_matrix : ?kl:int -> ?ku:int -> Matrix.t -> storage
(** Band copy of a square dense matrix.  Bandwidths default to the
    detected ones; raises [Invalid_argument] when a given bandwidth is
    smaller than a detected nonzero. *)

val decompose : ?pivot_tol:float -> storage -> t
(** Banded LU with partial (row) pivoting.  The storage is consumed:
    it is factorised in place and must not be reused.  Raises
    [Singular] when a pivot column is below [pivot_tol] in absolute
    value (default 1e-300, i.e. only exact breakdown). *)

val solve : t -> float array -> float array
(** [solve f b] solves [A x = b] (fresh result array). *)

val solve_into : t -> b:float array -> x:float array -> unit
(** Allocation-free solve: reads [b], writes the solution into [x].
    [b] and [x] may be the same array.  Raises [Invalid_argument] on a
    length mismatch. *)

val size : t -> int
val kl : t -> int
val ku : t -> int
