(** General sparse LU (Gilbert-Peierls left-looking, threshold partial
    pivoting with diagonal preference) with the symbolic analysis split
    out for reuse.

    This is the third {!Solver} backend, the one that scales to 2-D
    structures: on an m x n mesh the banded kernel after RCM does
    O(n^2) work because the band grows like sqrt(n), while sparse LU
    under a fill-reducing ordering ({!Mindeg}) stays near
    O(n^{1.5}).

    The API splits the work the way the callers amortise it:

    - {!factor} / {!cfactor}: discover the column patterns and the
      pivot sequence — the symbolic analysis — while computing the
      first numeric factorisation.
    - {!refactor} / {!crefactor}: replay a recorded analysis against
      new values in the same stamped pattern — no graph traversal, no
      pivot search.  Numerically identical to what {!factor} would
      produce with the same pivot sequence.  An AC sweep analyses once
      and refactors per frequency; the transient engine analyses once
      and refactors per (method, dt).
    - {!solve_into} / {!csolve_into}: allocation-free triangular
      solves.

    The symbolic side ({!symbolic}, shared by real and complex
    factors of the same pattern family) is immutable once built, so a
    value analysed before a {!Rlc_parallel.Pool} fan-out can be read
    concurrently from every domain.

    Pivoting: within each column the pivot is the not-yet-pivotal row
    of largest magnitude, except that the diagonal is kept whenever it
    is within [pivot_tol] (default 0.001) of that maximum — MNA
    matrices have structurally zero diagonals on source/branch rows
    (so some off-diagonal pivoting is unavoidable) but near-diagonal
    pivoting preserves the fill the ordering bought.  A replayed pivot
    can go bad on values far from the analysed ones: {!refactor}
    monitors multiplier growth and raises {!Repivot} so the caller can
    fall back to a fresh analysis. *)

exception Singular
(** A column ran out of candidate pivots (structural singularity) or
    the best candidate is numerically zero / non-finite. *)

exception Repivot
(** Raised by {!refactor} / {!crefactor} when the recorded pivot
    sequence is unstable for the new values (zero pivot or multiplier
    growth beyond [growth_limit]); re-analyse with {!factor}. *)

(** {1 Compressed-column inputs} *)

type csc
(** A real matrix in compressed-column form with duplicates already
    accumulated. *)

type ccsc
(** Complex twin of {!csc} (split re/im storage). *)

val of_fill : n:int -> ((int -> int -> float -> unit) -> unit) -> csc
(** [of_fill ~n fill] assembles an [n] x [n] matrix: [fill] is called
    once with an [add i j v] accumulator (duplicate (i,j) stamps
    accumulate).  The column patterns keep first-stamp order, so the
    pattern is a pure function of the stamp sequence — stamping the
    same structure again yields the byte-identical pattern
    {!refactor} requires.  Raises [Invalid_argument] on [n <= 0] or an
    out-of-range index. *)

val cof_fill : n:int -> ((int -> int -> Cx.t -> unit) -> unit) -> ccsc
(** Complex twin of {!of_fill}. *)

val nnz : csc -> int
val cnnz : ccsc -> int

(** {1 Symbolic analysis} *)

type symbolic
(** Column patterns of L and U plus the pivot sequence — everything
    value-independent about a factorisation.  Immutable; safe to share
    across domains. *)

val sym_n : symbolic -> int
val sym_lu_nnz : symbolic -> int
(** Nonzeros of L + U (unit diagonal of L not counted, diagonal of U
    counted) — the fill the ordering achieved. *)

(** {1 Real factorisation} *)

type t
(** A numeric factorisation [P A = L U]. *)

val factor : ?pivot_tol:float -> csc -> t
(** Symbolic analysis + first numeric factorisation.  Raises
    {!Singular}. *)

val refactor : ?growth_limit:float -> symbolic -> csc -> t
(** [refactor sym a] replays [sym]'s pattern and pivot sequence
    against the values of [a] (which must carry the same pattern the
    analysis saw — guaranteed when it came from the same stamp
    sequence; a cheap nnz check guards the rest).  Raises {!Repivot}
    when the replayed sequence is unstable ([growth_limit] defaults to
    1e8), {!Singular} on non-finite values, [Invalid_argument] on a
    pattern size mismatch. *)

val symbolic : t -> symbolic
val lu_nnz : t -> int

val solve_into : t -> b:float array -> x:float array -> unit
(** Allocation-free solve of [A x = b]; [b] and [x] must be distinct
    (the row permutation reads [b] out of order).  Raises
    [Invalid_argument] on length mismatch or aliasing. *)

(** {1 Complex factorisation} *)

type ct

val cfactor : ?pivot_tol:float -> ccsc -> ct
val crefactor : ?growth_limit:float -> symbolic -> ccsc -> ct
val csymbolic : ct -> symbolic
val clu_nnz : ct -> int
val csolve_into : ct -> b:Cx.t array -> x:Cx.t array -> unit
