type t = float array (* increasing powers, trimmed *)

let trim a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0.0 do
    decr n
  done;
  Array.sub a 0 !n

let of_coeffs a = trim (Array.copy a)
let coeffs p = Array.copy p
let degree p = Array.length p - 1

let eval p x =
  let acc = ref 0.0 in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(i)
  done;
  !acc

let eval_cx p z =
  let open Cx in
  let acc = ref zero in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *: z) +: of_float p.(i)
  done;
  !acc

let derivative p =
  if Array.length p <= 1 then [||]
  else trim (Array.init (Array.length p - 1) (fun i -> float_of_int (i + 1) *. p.(i + 1)))

let add p q =
  let n = Int.max (Array.length p) (Array.length q) in
  trim
    (Array.init n (fun i ->
         (if i < Array.length p then p.(i) else 0.0)
         +. if i < Array.length q then q.(i) else 0.0))

let mul p q =
  if Array.length p = 0 || Array.length q = 0 then [||]
  else begin
    let r = Array.make (Array.length p + Array.length q - 1) 0.0 in
    Array.iteri
      (fun i a -> Array.iteri (fun j b -> r.(i + j) <- r.(i + j) +. (a *. b)) q)
      p;
    trim r
  end

let scale k p = trim (Array.map (fun c -> k *. c) p)

let equal ?(tol = 0.0) p q =
  Array.length p = Array.length q
  && Array.for_all2 (fun a b -> Float.abs (a -. b) <= tol) p q

let quadratic_roots ~a ~b ~c =
  if a = 0.0 then invalid_arg "Polynomial.quadratic_roots: a = 0";
  let disc = (b *. b) -. (4.0 *. a *. c) in
  if disc >= 0.0 then begin
    (* q-formula avoids catastrophic cancellation for b^2 >> 4ac *)
    let sq = Float.sqrt disc in
    let q = -0.5 *. (b +. Float.copy_sign sq b) in
    if q = 0.0 then (Cx.zero, Cx.zero)
    else begin
      let r1 = q /. a and r2 = c /. q in
      (Cx.of_float (Float.min r1 r2), Cx.of_float (Float.max r1 r2))
    end
  end
  else begin
    let re = -.b /. (2.0 *. a) in
    let im = Float.sqrt (-.disc) /. (2.0 *. a) in
    (Cx.make re (-.(Float.abs im)), Cx.make re (Float.abs im))
  end

let compare_roots (a : Cx.t) (b : Cx.t) =
  match Float.compare a.Cx.re b.Cx.re with
  | 0 -> Float.compare a.Cx.im b.Cx.im
  | c -> c

(* Durand-Kerner (Weierstrass) simultaneous iteration. *)
let durand_kerner ?(tol = 1e-12) ?(max_iter = 500) p =
  let n = degree p in
  let lead = p.(n) in
  let monic = Array.map (fun c -> c /. lead) p in
  (* initial guesses on a circle of radius based on coefficient bounds *)
  let radius =
    1.0
    +. Array.fold_left
         (fun acc c -> Float.max acc (Float.abs c))
         0.0 (Array.sub monic 0 n)
  in
  let roots =
    Array.init n (fun k ->
        let angle =
          (2.0 *. Float.pi *. float_of_int k /. float_of_int n) +. 0.4
        in
        Cx.make (radius *. cos angle) (radius *. sin angle))
  in
  let eval_monic z = eval_cx monic z in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let max_move = ref 0.0 in
    for k = 0 to n - 1 do
      let zk = roots.(k) in
      let denom = ref Cx.one in
      for j = 0 to n - 1 do
        if j <> k then denom := Cx.( *: ) !denom (Cx.( -: ) zk roots.(j))
      done;
      let delta = Cx.( /: ) (eval_monic zk) !denom in
      roots.(k) <- Cx.( -: ) zk delta;
      max_move := Float.max !max_move (Cx.norm delta)
    done;
    if !max_move <= tol then converged := true
  done;
  Array.to_list roots

let roots ?(tol = 1e-12) ?max_iter p =
  match degree p with
  | d when d <= 0 -> invalid_arg "Polynomial.roots: degree < 1"
  | 1 -> [ Cx.of_float (-.p.(0) /. p.(1)) ]
  | 2 ->
      let r1, r2 = quadratic_roots ~a:p.(2) ~b:p.(1) ~c:p.(0) in
      List.sort compare_roots [ r1; r2 ]
  | _ ->
      let rs = durand_kerner ~tol ?max_iter p in
      (* snap almost-real roots to the real axis *)
      let snapped =
        List.map
          (fun (z : Cx.t) ->
            if Float.abs z.Cx.im <= 1e-8 *. (1.0 +. Float.abs z.Cx.re) then
              Cx.of_float z.Cx.re
            else z)
          rs
      in
      List.sort compare_roots snapped

let pp ppf p =
  if Array.length p = 0 then Format.fprintf ppf "0"
  else
    Array.iteri
      (fun i c ->
        if i = 0 then Format.fprintf ppf "%g" c
        else Format.fprintf ppf " + %g x^%d" c i)
      p
