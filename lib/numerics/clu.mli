(** Complex LU factorisation with partial pivoting — the solver behind
    the AC engine's per-frequency [(G + jwC) x = b] systems and the
    reduced-model transfer evaluations of [Rlc_mor].

    Mirrors {!Lu} over {!Cmatrix}; pivots are chosen by complex
    modulus. *)

type t

exception Singular
(** Raised when the best remaining pivot's modulus falls below the
    threshold. *)

val decompose : ?pivot_tol:float -> Cmatrix.t -> t
(** Doolittle factorisation of a square matrix.  Raises
    [Invalid_argument] on a non-square input and {!Singular} on
    breakdown ([pivot_tol] defaults to 1e-300, i.e. only exact
    breakdown). *)

val size : t -> int

val solve : t -> Cx.t array -> Cx.t array
(** Fresh solution array; raises [Invalid_argument] on a length
    mismatch. *)

val solve_into : t -> b:Cx.t array -> x:Cx.t array -> unit
(** Allocation-free solve into [x]; [b] and [x] must be distinct. *)

val solve_matrix : ?pivot_tol:float -> Cmatrix.t -> Cx.t array -> Cx.t array
(** One-shot [decompose] + [solve]. *)
