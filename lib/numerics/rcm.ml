let permutation adj =
  let m = Array.length adj in
  let degree = Array.map List.length adj in
  let by_degree l =
    List.sort (fun a b -> Int.compare degree.(a) degree.(b)) l
  in
  let visited = Array.make m false in
  let order = Array.make m 0 in
  let pos = ref 0 in
  let queue = Queue.create () in
  while !pos < m do
    (* lowest-degree unvisited vertex starts the next component *)
    let start = ref (-1) in
    for u = m - 1 downto 0 do
      if (not visited.(u)) && (!start < 0 || degree.(u) < degree.(!start))
      then start := u
    done;
    visited.(!start) <- true;
    Queue.add !start queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      order.(!pos) <- u;
      incr pos;
      List.iter
        (fun v ->
          if not visited.(v) then begin
            visited.(v) <- true;
            Queue.add v queue
          end)
        (by_degree adj.(u))
    done
  done;
  let perm = Array.make m 0 in
  Array.iteri (fun i u -> perm.(u) <- m - 1 - i) order;
  perm

let bandwidth adj perm =
  let bw = ref 0 in
  Array.iteri
    (fun u neighbours ->
      List.iter
        (fun v ->
          if u <> v then bw := Int.max !bw (abs (perm.(u) - perm.(v))))
        neighbours)
    adj;
  !bw
