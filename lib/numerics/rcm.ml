let permutation adj =
  let m = Array.length adj in
  let degree = Array.map List.length adj in
  (* Neighbour lists sorted by degree once up front (identical
     comparator, so identical lists) instead of on every visit, and
     component restarts found by a rolling cursor over the vertices
     pre-sorted by (degree, index descending) instead of an O(m) scan
     per component — the scan plus per-visit sorts made the old code
     O(m^2) on the many-component graphs grid compilation produces.
     The cursor enumerates exactly what the scan selected: the
     highest-indexed vertex of minimum degree among the unvisited. *)
  let sorted_adj =
    Array.map
      (fun l -> List.sort (fun a b -> Int.compare degree.(a) degree.(b)) l)
      adj
  in
  let starts = Array.init m (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Int.compare degree.(a) degree.(b) in
      if c <> 0 then c else Int.compare b a)
    starts;
  let cursor = ref 0 in
  let visited = Array.make m false in
  let order = Array.make m 0 in
  let pos = ref 0 in
  let queue = Queue.create () in
  while !pos < m do
    (* lowest-degree unvisited vertex starts the next component *)
    while visited.(starts.(!cursor)) do
      incr cursor
    done;
    let start = starts.(!cursor) in
    visited.(start) <- true;
    Queue.add start queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      order.(!pos) <- u;
      incr pos;
      List.iter
        (fun v ->
          if not visited.(v) then begin
            visited.(v) <- true;
            Queue.add v queue
          end)
        sorted_adj.(u)
    done
  done;
  let perm = Array.make m 0 in
  Array.iteri (fun i u -> perm.(u) <- m - 1 - i) order;
  perm

let bandwidth adj perm =
  let bw = ref 0 in
  Array.iteri
    (fun u neighbours ->
      List.iter
        (fun v ->
          if u <> v then bw := Int.max !bw (abs (perm.(u) - perm.(v))))
        neighbours)
    adj;
  !bw
