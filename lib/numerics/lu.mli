(** LU decomposition with partial pivoting, and the linear-system /
    determinant / inverse operations built on it.

    This is the workhorse behind both the 2x2 optimizer Newton steps
    and the MNA matrices of the transient circuit simulator. *)

type t
(** A factorisation [P*A = L*U] of a square matrix [A]. *)

exception Singular
(** Raised when a pivot falls below the singularity threshold. *)

val decompose : ?pivot_tol:float -> Matrix.t -> t
(** [decompose a] factorises square [a].  Raises [Singular] when the
    matrix is numerically singular ([pivot_tol] defaults to 1e-300,
    i.e. only exact breakdown), [Invalid_argument] when not square. *)

val solve : t -> float array -> float array
(** [solve lu b] solves [A x = b]. *)

val solve_into : t -> b:float array -> x:float array -> unit
(** Allocation-free [solve]: reads [b], writes the solution into the
    preallocated [x].  The two arrays must be distinct (the initial
    permutation reads [b] out of order).  Raises [Invalid_argument] on
    a length mismatch or aliased arrays. *)

val solve_matrix : ?pivot_tol:float -> Matrix.t -> float array -> float array
(** One-shot [decompose] + [solve]. *)

val det : t -> float
val inverse : t -> Matrix.t
val size : t -> int
