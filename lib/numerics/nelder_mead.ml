type result = {
  x : float array;
  fx : float;
  iterations : int;
  converged : bool;
}

let guard f x =
  let v = f x in
  if Float.is_nan v then infinity else v

module M = Rlc_instr.Metrics

let m_calls = M.counter "nelder_mead.calls"
let m_iterations = M.counter "nelder_mead.iterations"
let m_spread = M.hist "nelder_mead.fspread"
let m_diverged = M.counter "nelder_mead.diverged"

let minimize_ctx ?(max_iter = 2000) ?(ftol = 1e-12) ?(xtol = 1e-10)
    ?(initial_step = 0.05) ~ctx ~f:fc ~x0 () =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Nelder_mead.minimize: empty x0";
  let f = guard (fun x -> fc ctx x) in
  (* simplex of n+1 vertices *)
  let vertices =
    Array.init (n + 1) (fun i ->
        let v = Array.copy x0 in
        if i > 0 then begin
          let j = i - 1 in
          let d = initial_step *. (1.0 +. Float.abs v.(j)) in
          v.(j) <- v.(j) +. d
        end;
        v)
  in
  let values = Array.map f vertices in
  let order () =
    let idx = Array.init (n + 1) (fun i -> i) in
    Array.sort (fun a b -> Float.compare values.(a) values.(b)) idx;
    idx
  in
  let centroid exclude =
    let c = Array.make n 0.0 in
    Array.iteri
      (fun i v ->
        if i <> exclude then
          Array.iteri (fun j x -> c.(j) <- c.(j) +. x) v)
      vertices;
    Array.map (fun x -> x /. float_of_int n) c
  in
  let combine a alpha b beta =
    Array.init n (fun j -> (alpha *. a.(j)) +. (beta *. b.(j)))
  in
  M.incr m_calls;
  let iter = ref 0 in
  let converged = ref false in
  while (not !converged) && !iter < max_iter do
    incr iter;
    M.incr m_iterations;
    let idx = order () in
    let best = idx.(0) and worst = idx.(n) and second_worst = idx.(n - 1) in
    let fbest = values.(best) and fworst = values.(worst) in
    (* convergence: spread of values and vertex coordinates *)
    let fspread = Float.abs (fworst -. fbest) in
    M.observe m_spread fspread;
    let xspread =
      Array.fold_left
        (fun acc v ->
          let d = ref 0.0 in
          Array.iteri
            (fun j x -> d := Float.max !d (Float.abs (x -. vertices.(best).(j))))
            v;
          Float.max acc !d)
        0.0 vertices
    in
    if
      fspread <= ftol *. (1.0 +. Float.abs fbest)
      && xspread
         <= xtol
            *. (1.0
               +. Array.fold_left
                    (fun a x -> Float.max a (Float.abs x))
                    0.0 vertices.(best))
    then converged := true
    else begin
      let c = centroid worst in
      let xw = vertices.(worst) in
      let reflect = combine c 2.0 xw (-1.0) in
      let freflect = f reflect in
      if freflect < fbest then begin
        let expand = combine c 3.0 xw (-2.0) in
        let fexpand = f expand in
        if fexpand < freflect then begin
          vertices.(worst) <- expand;
          values.(worst) <- fexpand
        end
        else begin
          vertices.(worst) <- reflect;
          values.(worst) <- freflect
        end
      end
      else if freflect < values.(second_worst) then begin
        vertices.(worst) <- reflect;
        values.(worst) <- freflect
      end
      else begin
        let contract =
          if freflect < fworst then combine c 1.5 xw (-0.5) (* outside *)
          else combine c 0.5 xw 0.5 (* inside *)
        in
        let fcontract = f contract in
        if fcontract < Float.min freflect fworst then begin
          vertices.(worst) <- contract;
          values.(worst) <- fcontract
        end
        else
          (* shrink towards best *)
          Array.iteri
            (fun i v ->
              if i <> best then begin
                let shrunk = combine vertices.(best) 0.5 v 0.5 in
                vertices.(i) <- shrunk;
                values.(i) <- f shrunk
              end)
            vertices
      end
    end
  done;
  let idx = order () in
  let best = idx.(0) in
  if not !converged then begin
    M.incr m_diverged;
    if Rlc_instr.Journal.capturing () then
      Rlc_instr.Journal.record "nelder_mead.divergence"
        [
          ("iterations", Rlc_instr.Journal.Int !iter);
          ( "fspread",
            Rlc_instr.Journal.Num
              (Float.abs (values.(idx.(n)) -. values.(best))) );
        ];
    Rlc_instr.Health.degraded ~kind:"nelder_mead" ~reason:"max iterations"
  end;
  {
    x = Array.copy vertices.(best);
    fx = values.(best);
    iterations = !iter;
    converged = !converged;
  }

let minimize ?max_iter ?ftol ?xtol ?initial_step ~f ~x0 () =
  (* legacy closure shape over the one real implementation — same
     float operations in the same order *)
  minimize_ctx ?max_iter ?ftol ?xtol ?initial_step ~ctx:()
    ~f:(fun () x -> f x) ~x0 ()
