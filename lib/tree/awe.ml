open Rlc_numerics

type model = {
  order : int;
  poles : Cx.t list;
  residues : Cx.t list;
  stable : bool;
}

let reduce ~moments ~order =
  if order < 1 then invalid_arg "Awe.reduce: order < 1";
  if Array.length moments < 2 * order then
    invalid_arg "Awe.reduce: need moments up to 2*order - 1";
  if Float.abs (moments.(0) -. 1.0) > 1e-12 then
    invalid_arg "Awe.reduce: m_0 must be 1";
  let q = order in
  (* Hankel system for a_1..a_q:
     sum_{j=1..q} a_j m_{k-j} = -m_k  for k = q..2q-1 *)
  let mat = Matrix.create q q in
  let rhs = Array.make q 0.0 in
  for row = 0 to q - 1 do
    let k = q + row in
    rhs.(row) <- -.moments.(k);
    for col = 0 to q - 1 do
      let j = col + 1 in
      Matrix.set mat row col (if k - j >= 0 then moments.(k - j) else 0.0)
    done
  done;
  let a =
    try Lu.solve_matrix mat rhs
    with Lu.Singular -> invalid_arg "Awe.reduce: singular Hankel system"
  in
  (* D(s) = 1 + a_1 s + ... + a_q s^q *)
  let denom = Polynomial.of_coeffs (Array.append [| 1.0 |] a) in
  if Polynomial.degree denom < q then
    invalid_arg "Awe.reduce: degenerate denominator (leading a_q = 0)";
  (* N(s) coefficients: n_k = sum_{j=0..k} a_j m_{k-j}, k = 0..q-1 *)
  let a_full = Array.append [| 1.0 |] a in
  let numer =
    Polynomial.of_coeffs
      (Array.init q (fun k ->
           let acc = ref 0.0 in
           for j = 0 to k do
             acc := !acc +. (a_full.(j) *. moments.(k - j))
           done;
           !acc))
  in
  let poles = Polynomial.roots denom in
  let d' = Polynomial.derivative denom in
  (* step-response residues: H(s)/s = 1/s + sum res_i/(s - p_i),
     res_i = N(p_i) / (p_i D'(p_i)) *)
  let residues =
    List.map
      (fun p ->
        let open Cx in
        Polynomial.eval_cx numer p
        /: (p *: Polynomial.eval_cx d' p))
      poles
  in
  let stable = List.for_all (fun p -> Cx.re p < 0.0) poles in
  { order = q; poles; residues; stable }

let step_eval model t =
  if t < 0.0 then invalid_arg "Awe.step_eval: t < 0";
  if t = 0.0 then 0.0
  else begin
    let open Cx in
    let v =
      List.fold_left2
        (fun acc p res -> acc +: (res *: exp (scale t p)))
        (of_float 1.0) model.poles model.residues
    in
    Cx.re v
  end

let delay ?(f = 0.5) model =
  if f <= 0.0 || f >= 1.0 then invalid_arg "Awe.delay: f outside (0,1)";
  if not model.stable then invalid_arg "Awe.delay: unstable model";
  (* timescale from the dominant (slowest) pole *)
  let tau0 =
    List.fold_left
      (fun acc p ->
        let re = Float.abs (Cx.re p) in
        if re > 1e-300 then Float.max acc (1.0 /. re) else acc)
      0.0 model.poles
  in
  let residual t = step_eval model t -. f in
  let lo, hi = Roots.bracket_first residual ~t0:0.0 ~dt:(tau0 /. 32.0) in
  if lo = hi then lo else Roots.brent ~tol:1e-16 residual lo hi

let of_tree ?driver_cp ~driver_rs ~order tree =
  let per_sink =
    Moments.voltage_moments ?driver_cp ~driver_rs ~order:(2 * order) tree
  in
  List.map (fun (name, ms) -> (name, reduce ~moments:ms ~order)) per_sink

let of_stage ?(segments = 64) ~order stage =
  let seg_len = stage.Rlc_core.Stage.h /. float_of_int segments in
  let wires =
    List.init segments (fun _ ->
        Tree.wire_of_line stage.Rlc_core.Stage.line ~length:seg_len)
  in
  let tree = Tree.chain ~sink_cap:(Rlc_core.Stage.cl stage) wires in
  match
    of_tree
      ~driver_cp:(Rlc_core.Stage.cp stage)
      ~driver_rs:(Rlc_core.Stage.rs stage)
      ~order tree
  with
  | [ (_, model) ] -> model
  | _ -> assert false
