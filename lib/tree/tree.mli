(** Interconnect routing trees.

    The paper studies point-to-point lines; real global nets branch.
    A tree is a root (the driver side) with wired edges down to
    capacitive sinks; every edge carries lumped totals (r, l, c) for
    its wire span.  The moment engine ({!Moments}) and the buffer
    inserter ({!Buffering}) operate on this structure. *)

type wire = {
  r : float;  (** total edge resistance, ohm *)
  l : float;  (** total edge inductance, H *)
  c : float;  (** total edge capacitance, F *)
}

val wire : r:float -> l:float -> c:float -> wire
(** Validates r > 0, l >= 0, c >= 0. *)

val wire_of_line : Rlc_core.Line.t -> length:float -> wire

type t =
  | Sink of { name : string; cap : float }
      (** A leaf load (receiver gate). *)
  | Node of { name : string; cap : float; branches : (wire * t) list }
      (** Internal branching point with optional extra load [cap];
          [branches] must be non-empty. *)

val sink : name:string -> cap:float -> t
val node : ?name:string -> ?cap:float -> (wire * t) list -> t
(** Raises [Invalid_argument] on an empty branch list. *)

val chain : ?name_prefix:string -> sink_cap:float -> wire list -> t
(** [chain ~sink_cap wires] is a non-branching chain of wires ending
    in one sink — the degenerate
    tree equivalent to a discretised point-to-point line (used to
    cross-validate the tree moments against the paper's b1/b2). *)

val total_cap : t -> float
(** Sum of all edge and load capacitances. *)

val total_wire : t -> wire option
(** Total r/l/c of all edges ([None] for a bare sink). *)

val sinks : t -> (string * float) list
(** All sink names with their loads, in traversal order.  Raises
    [Invalid_argument] on duplicate sink names. *)

val find_sink : t -> string -> bool
val depth : t -> int
(** Number of edges on the longest root-to-sink path; 0 for a sink. *)

val size : t -> int
(** Number of edges. *)

val map_wires : (wire -> wire) -> t -> t
(** Rescale or otherwise transform every edge (e.g. paint a different
    inductance assumption onto the whole net). *)

val segment_edges : max_segment:wire -> t -> t
(** Split every edge into equal pieces so that no piece exceeds
    [max_segment] in any of r, l, c — refining the lumped approximation
    and creating internal nodes that {!Buffering} can use as candidate
    buffer sites.  Inserted nodes carry no load. *)

val pp : Format.formatter -> t -> unit
