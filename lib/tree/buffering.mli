(** Buffer (repeater) insertion on routing trees — the van Ginneken
    dynamic program with the paper's RLC-aware two-pole delay as the
    wire-delay model.

    The DP propagates Pareto option lists (downstream capacitance c,
    required-time slack q) from the sinks to the root, considering a
    buffer of every candidate size at every internal node.  Delays:

    - wire edge (R, L, C) into downstream load c:
      the 50% delay of the two-pole model with b1 = R (C/2 + c) and
      b2 = L (C/2 + c); b2 = 0 (RC) degenerates to ln 2 * b1 — this is
      the inductance-aware ingredient missing from classical
      (Elmore-based) van Ginneken;
    - a buffer of size k driving load c: ln 2 * (rs cp + rs c / k),
      presenting input capacitance c0 k.

    For trees whose edges are long, call {!Tree.segment_edges} first so
    the DP has interior candidate sites. *)

type plan = {
  worst_delay : float;
      (** max root-to-sink 50% delay of the buffered tree, s *)
  unbuffered_delay : float;  (** same metric with no buffers inserted *)
  buffers : (string * float) list;
      (** (node name, buffer size k) chosen, root-to-leaf order *)
  options_explored : int;  (** total Pareto options generated *)
}

val default_sizes : float list
(** Candidate buffer sizes: 25, 50, 100, 200, 400, 800. *)

val wire_delay : Tree.wire -> load:float -> float
(** The edge-delay model described above. *)

val buffer_delay : Rlc_tech.Driver.t -> k:float -> load:float -> float

val insert :
  ?sizes:float list ->
  driver:Rlc_tech.Driver.t ->
  root_k:float ->
  Tree.t ->
  plan
(** [insert ~driver ~root_k tree] buffers the tree driven by a
    [root_k]-sized repeater.  Raises [Invalid_argument] on an empty
    size list or non-positive [root_k]. *)

val evaluate :
  driver:Rlc_tech.Driver.t ->
  root_k:float ->
  buffers:(string * float) list ->
  Tree.t ->
  float
(** Worst sink delay of the tree with an explicit buffer assignment
    (names must be internal-node names) — used to cross-check the DP
    against exhaustive search in the tests.  Unknown names raise
    [Invalid_argument]. *)
