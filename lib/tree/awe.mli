(** Asymptotic Waveform Evaluation: order-q Padé reduction from voltage
    moments — the generalization of the paper's two-pole model (which
    is exactly AWE with q = 2) to arbitrary order and arbitrary RLC
    trees.

    From moments m_0..m_{2q-1} of H(s) = sum m_i s^i the reducer finds
    the [q-1/q] Padé approximant N(s)/D(s): the denominator
    coefficients solve the q x q Hankel system
    sum_{j=0..q} a_j m_{k-j} = 0 for k = q..2q-1 (a_0 = 1), the poles
    are the roots of D, and the step response follows from the
    partial-fraction residues of H(s)/s.

    AWE's classic failure mode is faithfully present: above q ~ 4-5 the
    Hankel system is ill-conditioned and can produce unstable
    (right-half-plane) poles; [reduce] flags this instead of hiding
    it, and callers fall back to a lower order. *)

type model = {
  order : int;
  poles : Rlc_numerics.Cx.t list;  (** q poles *)
  residues : Rlc_numerics.Cx.t list;
      (** step-response residues: v(t) = 1 + sum res_i e^(p_i t) *)
  stable : bool;  (** all poles strictly in the left half plane *)
}

val reduce : moments:float array -> order:int -> model
(** [moments] holds m_0 (must be 1.0) through at least m_{2 order - 1}.
    Raises [Invalid_argument] on a short array, order < 1, m_0 <> 1, or
    a numerically singular Hankel system. *)

val step_eval : model -> float -> float
(** Unit step response; [Invalid_argument] for t < 0.  Meaningful only
    when [stable]. *)

val delay : ?f:float -> model -> float
(** First f-crossing (default 0.5).  Raises [Invalid_argument] on an
    unstable model. *)

val of_tree :
  ?driver_cp:float -> driver_rs:float -> order:int -> Tree.t ->
  (string * model) list
(** Order-q AWE model of every sink. *)

val of_stage : ?segments:int -> order:int -> Rlc_core.Stage.t -> model
(** AWE model of the paper's Figure 1 stage, via a finely discretised
    chain ([segments] defaults to 64).  With order = 2 this reproduces
    the paper's Padé model. *)
