let build ~levels ~total_span ~line ~sink_cap =
  if levels < 1 || levels > 12 then
    invalid_arg "Htree.build: levels must be in 1..12";
  if total_span <= 0.0 then invalid_arg "Htree.build: total_span <= 0";
  let counter = ref (-1) in
  let rec go depth =
    let len = total_span /. Float.pow 2.0 (float_of_int (depth + 1)) in
    let w = Tree.wire_of_line line ~length:len in
    let child () =
      if depth = levels - 1 then begin
        incr counter;
        Tree.sink ~name:(Printf.sprintf "s%d" !counter) ~cap:sink_cap
      end
      else go (depth + 1)
    in
    Tree.node ~name:(Printf.sprintf "lvl%d_%d" depth (!counter + 1))
      [ (w, child ()); (w, child ()) ]
  in
  go 0

let imbalance_first_branch transform tree =
  match tree with
  | Tree.Sink _ -> tree
  | Tree.Node { name; cap; branches } -> begin
      match branches with
      | [] -> tree
      | (w, first) :: rest ->
          Tree.Node
            {
              name;
              cap;
              branches =
                (transform w, Tree.map_wires transform first) :: rest;
            }
    end

let sink_delays ?f ?driver_cp ~driver_rs tree =
  Moments.compute ?driver_cp ~driver_rs tree
  |> List.map (fun sm -> (sm.Moments.name, Moments.sink_delay ?f sm))

let skew ?f ?driver_cp ~driver_rs tree =
  let delays = List.map snd (sink_delays ?f ?driver_cp ~driver_rs tree) in
  match delays with
  | [] -> invalid_arg "Htree.skew: no sinks"
  | d :: rest ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
          (d, d) rest
      in
      hi -. lo
