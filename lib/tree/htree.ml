let build ~levels ~total_span ~line ~sink_cap =
  if levels < 1 || levels > 12 then
    invalid_arg "Htree.build: levels must be in 1..12";
  if total_span <= 0.0 then invalid_arg "Htree.build: total_span <= 0";
  let counter = ref (-1) in
  let rec go depth =
    let len = total_span /. Float.pow 2.0 (float_of_int (depth + 1)) in
    let w = Tree.wire_of_line line ~length:len in
    let child () =
      if depth = levels - 1 then begin
        incr counter;
        Tree.sink ~name:(Printf.sprintf "s%d" !counter) ~cap:sink_cap
      end
      else go (depth + 1)
    in
    Tree.node ~name:(Printf.sprintf "lvl%d_%d" depth (!counter + 1))
      [ (w, child ()); (w, child ()) ]
  in
  go 0

let imbalance_first_branch transform tree =
  match tree with
  | Tree.Sink _ -> tree
  | Tree.Node { name; cap; branches } -> begin
      match branches with
      | [] -> tree
      | (w, first) :: rest ->
          Tree.Node
            {
              name;
              cap;
              branches =
                (transform w, Tree.map_wires transform first) :: rest;
            }
    end

let sink_delays ?f ?driver_cp ~driver_rs tree =
  Moments.compute ?driver_cp ~driver_rs tree
  |> List.map (fun sm -> (sm.Moments.name, Moments.sink_delay ?f sm))

let skew ?f ?driver_cp ~driver_rs tree =
  let delays = List.map snd (sink_delays ?f ?driver_cp ~driver_rs tree) in
  match delays with
  | [] -> invalid_arg "Htree.skew: no sinks"
  | d :: rest ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
          (d, d) rest
      in
      hi -. lo

(* ---------------- netlist compilation ---------------- *)

open Rlc_circuit

let to_netlist ?(segments_per_wire = 1) ?(driver_rs = 0.0) ?(vdd = 1.0)
    ?(t_rise = 0.0) tree =
  if segments_per_wire < 1 then
    invalid_arg "Htree.to_netlist: segments_per_wire < 1";
  if driver_rs < 0.0 then invalid_arg "Htree.to_netlist: driver_rs < 0";
  let nl = Netlist.create () in
  let src = Netlist.fresh_node ~name:"clk_src" nl in
  Netlist.add_vsource ~name:"clk_drv" nl src Netlist.ground
    (if t_rise <= 0.0 then Stimulus.Dc vdd
     else Stimulus.Step { v0 = 0.0; v1 = vdd; t_delay = 0.0; t_rise });
  let root =
    if driver_rs > 0.0 then begin
      let r = Netlist.fresh_node ~name:"clk_root" nl in
      Netlist.add_resistor ~name:"clk_rs" nl src r driver_rs;
      r
    end
    else src
  in
  let edge_count = ref 0 in
  let sinks = ref [] in
  let load name node cap =
    if cap > 0.0 then Netlist.add_capacitor ~name nl node Netlist.ground cap
  in
  (* each tree edge becomes a segments_per_wire-section RL ladder with
     pi-distributed shunt capacitance (total exactly the edge's c),
     through the same Ladder builder the point-to-point lines use *)
  let rec go tree from_node =
    match tree with
    | Tree.Sink { name; cap } ->
        load ("cl_" ^ name) from_node cap;
        sinks := (name, from_node) :: !sinks
    | Tree.Node { name; cap; branches } ->
        load ("cn_" ^ name) from_node cap;
        List.iter
          (fun ((w : Tree.wire), sub) ->
            let prefix = Printf.sprintf "e%d" !edge_count in
            incr edge_count;
            let far =
              Netlist.fresh_node ~name:(prefix ^ "_far") nl
            in
            Ladder.make ~name_prefix:prefix nl
              {
                Ladder.r = w.Tree.r;
                l = w.Tree.l;
                c = w.Tree.c;
                length = 1.0;
                segments = segments_per_wire;
              }
              ~from_node ~to_node:far;
            go sub far)
          branches
  in
  go tree root;
  (nl, root, List.rev !sinks)
