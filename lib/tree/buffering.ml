let default_sizes = [ 25.0; 50.0; 100.0; 200.0; 400.0; 800.0 ]

let ln2 = Float.log 2.0

let wire_delay (w : Tree.wire) ~load =
  if load < 0.0 then invalid_arg "Buffering.wire_delay: load < 0";
  let ceff = (w.Tree.c /. 2.0) +. load in
  let b1 = w.Tree.r *. ceff in
  let b2 = w.Tree.l *. ceff in
  if b2 <= 1e-6 *. b1 *. b1 then ln2 *. b1
  else Rlc_core.Delay.of_coeffs { Rlc_core.Pade.b1; b2 }

let buffer_delay driver ~k ~load =
  if k <= 0.0 then invalid_arg "Buffering.buffer_delay: k <= 0";
  if load < 0.0 then invalid_arg "Buffering.buffer_delay: load < 0";
  let { Rlc_tech.Driver.rs; cp; _ } = driver in
  ln2 *. ((rs *. cp) +. (rs *. load /. k))

type opt = { c : float; q : float; buffers : (string * float) list }

(* keep the Pareto frontier: an option is dominated when another has
   both smaller-or-equal load and larger-or-equal slack *)
let prune opts =
  let sorted =
    List.sort
      (fun a b ->
        match Float.compare a.c b.c with
        | 0 -> Float.compare b.q a.q
        | n -> n)
      opts
  in
  let rec go best_q acc = function
    | [] -> List.rev acc
    | o :: rest ->
        if o.q > best_q then go o.q (o :: acc) rest else go best_q acc rest
  in
  go neg_infinity [] sorted

type plan = {
  worst_delay : float;
  unbuffered_delay : float;
  buffers : (string * float) list;
  options_explored : int;
}

let insert ?(sizes = default_sizes) ~driver ~root_k tree =
  if sizes = [] then invalid_arg "Buffering.insert: empty size list";
  if root_k <= 0.0 then invalid_arg "Buffering.insert: root_k <= 0";
  List.iter
    (fun k -> if k <= 0.0 then invalid_arg "Buffering.insert: size <= 0")
    sizes;
  let explored = ref 0 in
  let count opts =
    explored := !explored + List.length opts;
    opts
  in
  let { Rlc_tech.Driver.c0; _ } = driver in
  let rec solve = function
    | Tree.Sink { cap; _ } -> [ { c = cap; q = 0.0; buffers = [] } ]
    | Tree.Node { name; cap; branches } ->
        (* push every child's options through its connecting wire *)
        let branch_opts =
          List.map
            (fun (w, sub) ->
              solve sub
              |> List.map (fun o ->
                     {
                       o with
                       c = o.c +. w.Tree.c;
                       q = o.q -. wire_delay w ~load:o.c;
                     })
              |> prune |> count)
            branches
        in
        (* cross-merge the branches: loads add, slacks take the min *)
        let merged =
          match branch_opts with
          | [] -> assert false
          | first :: rest ->
              List.fold_left
                (fun acc opts ->
                  prune
                    (List.concat_map
                       (fun a ->
                         List.map
                           (fun b ->
                             {
                               c = a.c +. b.c;
                               q = Float.min a.q b.q;
                               buffers = a.buffers @ b.buffers;
                             })
                           opts)
                       acc))
                first rest
        in
        (* optionally buffer here (the buffer drives the merged load;
           the node's own cap taps in upstream of the buffer) *)
        let buffered =
          List.concat_map
            (fun k ->
              List.map
                (fun o ->
                  {
                    c = c0 *. k;
                    q = o.q -. buffer_delay driver ~k ~load:o.c;
                    buffers = (name, k) :: o.buffers;
                  })
                merged)
            sizes
        in
        prune (merged @ buffered)
        |> List.map (fun o -> { o with c = o.c +. cap })
        |> count
  in
  let root_options = solve tree in
  let total o = buffer_delay driver ~k:root_k ~load:o.c -. o.q in
  let best =
    List.fold_left
      (fun acc o -> match acc with
        | Some b when total b <= total o -> acc
        | _ -> Some o)
      None root_options
  in
  let unbuffered =
    let rec eval = function
      | Tree.Sink { cap; _ } -> (cap, 0.0)
      | Tree.Node { cap; branches; _ } ->
          let per =
            List.map
              (fun (w, sub) ->
                let c, d = eval sub in
                (c +. w.Tree.c, d +. wire_delay w ~load:c))
              branches
          in
          ( cap +. List.fold_left (fun a (c, _) -> a +. c) 0.0 per,
            List.fold_left (fun a (_, d) -> Float.max a d) 0.0 per )
    in
    let c, d = eval tree in
    buffer_delay driver ~k:root_k ~load:c +. d
  in
  match best with
  | None -> invalid_arg "Buffering.insert: tree produced no options"
  | Some o ->
      {
        worst_delay = total o;
        unbuffered_delay = unbuffered;
        buffers = o.buffers;
        options_explored = !explored;
      }

let evaluate ~driver ~root_k ~buffers tree =
  let { Rlc_tech.Driver.c0; _ } = driver in
  (* validate names against the tree's internal nodes *)
  let rec node_names acc = function
    | Tree.Sink _ -> acc
    | Tree.Node { name; branches; _ } ->
        List.fold_left (fun a (_, sub) -> node_names a sub) (name :: acc)
          branches
  in
  let known = node_names [] tree in
  List.iter
    (fun (name, _) ->
      if not (List.mem name known) then
        invalid_arg ("Buffering.evaluate: unknown node " ^ name))
    buffers;
  let rec eval = function
    | Tree.Sink { cap; _ } -> (cap, 0.0)
    | Tree.Node { name; cap; branches } ->
        let per =
          List.map
            (fun (w, sub) ->
              let c, d = eval sub in
              (c +. w.Tree.c, d +. wire_delay w ~load:c))
            branches
        in
        let merged_c = List.fold_left (fun a (c, _) -> a +. c) 0.0 per in
        let worst = List.fold_left (fun a (_, d) -> Float.max a d) 0.0 per in
        let c, worst =
          match List.assoc_opt name buffers with
          | Some k ->
              (c0 *. k, worst +. buffer_delay driver ~k ~load:merged_c)
          | None -> (merged_c, worst)
        in
        (c +. cap, worst)
  in
  let c, d = eval tree in
  buffer_delay driver ~k:root_k ~load:c +. d
