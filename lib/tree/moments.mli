(** Voltage moments of RLC trees, and the per-sink two-pole model built
    from them.

    With the tree driven by an ideal step through the driver resistance
    R_S, each node voltage expands as V(s) = 1 + m1 s + m2 s^2 + ...
    (m1 < 0; -m1 is the Elmore delay).  Moments satisfy the classic
    path-tracing recursion extended with the inductive drop: the order
    n drop across an edge (R, L) is R i_n + L i_{n-1} where
    i_n = sum of C_k m_{n-1,k} over the subtree — so inductance first
    appears in m2, exactly as in the paper's b2.

    The per-sink two-pole reduction b1 = -m1, b2 = m1^2 - m2 matches
    the paper's Padé model when the tree is a discretised single line
    (the test suite verifies convergence as segmentation refines), so
    all the single-line machinery — damping classification, delay
    solver — lifts to arbitrary trees. *)

type sink_moments = {
  name : string;
  m1 : float;  (** first voltage moment, s (negative) *)
  m2 : float;  (** second voltage moment, s^2 *)
  b1 : float;  (** -m1: Elmore delay including the driver, s *)
  b2 : float;  (** m1^2 - m2: the paper's second Padé coefficient *)
}

val compute :
  ?driver_cp:float -> driver_rs:float -> Tree.t -> sink_moments list
(** Moments of every sink, with the driver modelled as a series
    resistance [driver_rs] (and optional parasitic output capacitance
    [driver_cp] at the root).  Order matches {!Tree.sinks}. *)

val voltage_moments :
  ?driver_cp:float -> driver_rs:float -> order:int -> Tree.t ->
  (string * float array) list
(** Arbitrary-order voltage moments per sink: element [i] of the array
    is m_i (m_0 = 1), up to [order] inclusive.  The same recursion as
    {!compute}, iterated — this feeds the {!Awe} reducer, which needs
    moments up to 2q-1 for an order-q model. *)

val elmore : driver_rs:float -> Tree.t -> (string * float) list
(** Just the Elmore delays (b1). *)

val sink_delay : ?f:float -> sink_moments -> float
(** 50% (or f*100%) delay of the sink's two-pole model via the paper's
    delay-equation solver.  Near sinks can have b2 <= 0 (their response
    carries strong zeros, making a pole-only second-order fit invalid);
    those fall back to the single-pole estimate b1 ln(1/(1-f)). *)

val critical_sink : ?f:float -> sink_moments list -> sink_moments
(** The sink with the largest two-pole delay.  Raises
    [Invalid_argument] on an empty list. *)
