type sink_moments = {
  name : string;
  m1 : float;
  m2 : float;
  b1 : float;
  b2 : float;
}

(* Flattened tree: node 0 is the root; each other node knows its parent
   and the wire reaching it.  Edge capacitance is split half to each
   end, so node loads absorb all wire capacitance. *)
type flat = {
  parent : int array;
  wire_r : float array; (* of the edge from parent *)
  wire_l : float array;
  load : float array;
  names : (int * string) list; (* sink ids *)
  order : int array; (* topological order, parents first *)
}

let flatten ?(driver_cp = 0.0) tree =
  let rec count_nodes = function
    | Tree.Sink _ -> 1
    | Tree.Node { branches; _ } ->
        1 + List.fold_left (fun a (_, s) -> a + count_nodes s) 0 branches
  in
  let below_root =
    match tree with
    | Tree.Sink _ -> 1
    | Tree.Node { branches; _ } ->
        List.fold_left (fun a (_, s) -> a + count_nodes s) 0 branches
  in
  let n = 1 + below_root in
  let parent = Array.make n (-1) in
  let wire_r = Array.make n 0.0 in
  let wire_l = Array.make n 0.0 in
  let load = Array.make n 0.0 in
  let names = ref [] in
  load.(0) <- driver_cp;
  let cursor = ref 1 in
  (* allocate in parents-first order so index order is topological *)
  let rec walk parent_id (w : Tree.wire) node =
    let id = !cursor in
    incr cursor;
    parent.(id) <- parent_id;
    wire_r.(id) <- w.Tree.r;
    wire_l.(id) <- w.Tree.l;
    load.(id) <- load.(id) +. (w.Tree.c /. 2.0);
    load.(parent_id) <- load.(parent_id) +. (w.Tree.c /. 2.0);
    match node with
    | Tree.Sink { name; cap } ->
        load.(id) <- load.(id) +. cap;
        names := (id, name) :: !names
    | Tree.Node { cap; branches; _ } ->
        load.(id) <- load.(id) +. cap;
        List.iter (fun (w', sub) -> walk id w' sub) branches
  in
  (match tree with
  | Tree.Sink { name; cap } ->
      (* a bare sink hangs directly off the driver *)
      parent.(1) <- 0;
      wire_r.(1) <- 1e-9;
      load.(1) <- cap;
      names := [ (1, name) ]
  | Tree.Node { cap; branches; _ } ->
      (* merge the tree's root Node into flat node 0 *)
      load.(0) <- load.(0) +. cap;
      List.iter (fun (w, sub) -> walk 0 w sub) branches);
  { parent; wire_r; wire_l; load; names = List.rev !names;
    order = Array.init n (fun i -> i) }

let moment_arrays ?(driver_cp = 0.0) ~driver_rs ~order tree =
  if driver_rs <= 0.0 then invalid_arg "Moments: driver_rs <= 0";
  if order < 1 then invalid_arg "Moments: order < 1";
  let f = flatten ~driver_cp tree in
  let n = Array.length f.parent in
  (* subtree sums of load * m for a given moment array *)
  let subtree_sums m =
    let s = Array.init n (fun i -> f.load.(i) *. m.(i)) in
    (* children come after parents in index order: accumulate backwards *)
    for i = n - 1 downto 1 do
      s.(f.parent.(i)) <- s.(f.parent.(i)) +. s.(i)
    done;
    s
  in
  let next_order m_prev m_prev2 =
    let s_prev = subtree_sums m_prev in
    let s_prev2 = subtree_sums m_prev2 in
    let m = Array.make n 0.0 in
    Array.iter
      (fun i ->
        if i = 0 then m.(0) <- -.driver_rs *. s_prev.(0)
        else
          m.(i) <-
            m.(f.parent.(i))
            -. (f.wire_r.(i) *. s_prev.(i))
            -. (f.wire_l.(i) *. s_prev2.(i)))
      f.order;
    m
  in
  let all = Array.make (order + 1) [||] in
  all.(0) <- Array.make n 1.0;
  let m_minus1 = Array.make n 0.0 in
  for k = 1 to order do
    all.(k) <- next_order all.(k - 1) (if k = 1 then m_minus1 else all.(k - 2))
  done;
  (f, all)

let voltage_moments ?driver_cp ~driver_rs ~order tree =
  let f, all = moment_arrays ?driver_cp ~driver_rs ~order tree in
  List.map
    (fun (id, name) -> (name, Array.init (order + 1) (fun k -> all.(k).(id))))
    f.names

let compute ?driver_cp ~driver_rs tree =
  let f, all = moment_arrays ?driver_cp ~driver_rs ~order:2 tree in
  List.map
    (fun (id, name) ->
      let m1v = all.(1).(id) and m2v = all.(2).(id) in
      { name; m1 = m1v; m2 = m2v; b1 = -.m1v; b2 = (m1v *. m1v) -. m2v })
    f.names

let elmore ~driver_rs tree =
  List.map (fun sm -> (sm.name, sm.b1)) (compute ~driver_rs tree)

let sink_delay ?(f = 0.5) sm =
  if sm.b2 <= 1e-12 *. sm.b1 *. sm.b1 then
    (* zero-dominated near-sink response: single-pole estimate *)
    sm.b1 *. Float.log (1.0 /. (1.0 -. f))
  else Rlc_core.Delay.of_coeffs ~f { Rlc_core.Pade.b1 = sm.b1; b2 = sm.b2 }

let critical_sink ?f = function
  | [] -> invalid_arg "Moments.critical_sink: empty list"
  | first :: rest ->
      List.fold_left
        (fun best sm ->
          if sink_delay ?f sm > sink_delay ?f best then sm else best)
        first rest
