type wire = { r : float; l : float; c : float }

let wire ~r ~l ~c =
  if r <= 0.0 then invalid_arg "Tree.wire: r <= 0";
  if l < 0.0 then invalid_arg "Tree.wire: l < 0";
  if c < 0.0 then invalid_arg "Tree.wire: c < 0";
  { r; l; c }

let wire_of_line line ~length =
  if length <= 0.0 then invalid_arg "Tree.wire_of_line: length <= 0";
  wire
    ~r:(line.Rlc_core.Line.r *. length)
    ~l:(line.Rlc_core.Line.l *. length)
    ~c:(line.Rlc_core.Line.c *. length)

type t =
  | Sink of { name : string; cap : float }
  | Node of { name : string; cap : float; branches : (wire * t) list }

let sink ~name ~cap =
  if cap < 0.0 then invalid_arg "Tree.sink: cap < 0";
  Sink { name; cap }

let node_counter = ref 0

let node ?name ?(cap = 0.0) branches =
  if branches = [] then invalid_arg "Tree.node: empty branch list";
  if cap < 0.0 then invalid_arg "Tree.node: cap < 0";
  let name =
    match name with
    | Some n -> n
    | None ->
        incr node_counter;
        Printf.sprintf "_n%d" !node_counter
  in
  Node { name; cap; branches }

let chain ?(name_prefix = "chain") ~sink_cap segments =
  if segments = [] then invalid_arg "Tree.chain: no segments";
  let rec build i = function
    | [] -> sink ~name:(name_prefix ^ "_sink") ~cap:sink_cap
    | w :: rest ->
        node ~name:(Printf.sprintf "%s_%d" name_prefix i) [ (w, build (i + 1) rest) ]
  in
  match build 0 segments with
  | Node { branches = [ (w, sub) ]; _ } ->
      (* keep the first wire attached to an unnamed root node so the
         chain is a single-branch tree *)
      node ~name:(name_prefix ^ "_root") [ (w, sub) ]
  | other -> other

let rec total_cap = function
  | Sink { cap; _ } -> cap
  | Node { cap; branches; _ } ->
      List.fold_left
        (fun acc (w, sub) -> acc +. w.c +. total_cap sub)
        cap branches

let total_wire tree =
  let rec go = function
    | Sink _ -> { r = 0.0; l = 0.0; c = 0.0 }
    | Node { branches; _ } ->
        List.fold_left
          (fun acc (w, sub) ->
            let s = go sub in
            { r = acc.r +. w.r +. s.r;
              l = acc.l +. w.l +. s.l;
              c = acc.c +. w.c +. s.c })
          { r = 0.0; l = 0.0; c = 0.0 }
          branches
  in
  match tree with Sink _ -> None | Node _ -> Some (go tree)

let sinks tree =
  let rec go acc = function
    | Sink { name; cap } -> (name, cap) :: acc
    | Node { branches; _ } ->
        List.fold_left (fun acc (_, sub) -> go acc sub) acc branches
  in
  let all = List.rev (go [] tree) in
  let names = List.map fst all in
  let sorted = List.sort String.compare names in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if String.equal a b then
          invalid_arg ("Tree.sinks: duplicate sink name " ^ a)
        else check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  all

let find_sink tree name =
  let rec go = function
    | Sink { name = n; _ } -> String.equal n name
    | Node { branches; _ } -> List.exists (fun (_, sub) -> go sub) branches
  in
  go tree

let rec depth = function
  | Sink _ -> 0
  | Node { branches; _ } ->
      1 + List.fold_left (fun acc (_, sub) -> Int.max acc (depth sub)) 0 branches

let rec size = function
  | Sink _ -> 0
  | Node { branches; _ } ->
      List.fold_left (fun acc (_, sub) -> acc + 1 + size sub) 0 branches

let rec map_wires f = function
  | Sink _ as s -> s
  | Node { name; cap; branches } ->
      Node
        {
          name;
          cap;
          branches = List.map (fun (w, sub) -> (f w, map_wires f sub)) branches;
        }

let segment_edges ~max_segment tree =
  if max_segment.r <= 0.0 then
    invalid_arg "Tree.segment_edges: max_segment.r <= 0";
  let pieces w =
    let by limit total = if limit <= 0.0 then 1 else
      int_of_float (Float.ceil (total /. limit))
    in
    Int.max 1
      (Int.max (by max_segment.r w.r)
         (Int.max (by max_segment.l w.l) (by max_segment.c w.c)))
  in
  (* synthetic joints get deterministic names derived from the parent
     node, branch index and piece index, so two structurally identical
     trees segment to identical names (Buffering plans transfer) *)
  let rec go = function
    | Sink _ as s -> s
    | Node { name; cap; branches } ->
        let branches =
          List.mapi
            (fun bi (w, sub) ->
              let n = pieces w in
              if n = 1 then (w, go sub)
              else begin
                let piece =
                  {
                    r = w.r /. float_of_int n;
                    l = w.l /. float_of_int n;
                    c = w.c /. float_of_int n;
                  }
                in
                let rec nest k =
                  if k = 0 then go sub
                  else
                    Node
                      {
                        name = Printf.sprintf "%s.%d.%d" name bi (n - k);
                        cap = 0.0;
                        branches = [ (piece, nest (k - 1)) ];
                      }
                in
                (piece, nest (n - 1))
              end)
            branches
        in
        Node { name; cap; branches }
  in
  go tree

let rec pp ppf = function
  | Sink { name; cap } -> Format.fprintf ppf "%s(%.2ffF)" name (cap *. 1e15)
  | Node { name; branches; _ } ->
      Format.fprintf ppf "@[<v 2>%s" name;
      List.iter
        (fun (w, sub) ->
          Format.fprintf ppf "@,-[%.0fohm,%.2fpF]- %a" w.r (w.c *. 1e12) pp sub)
        branches;
      Format.fprintf ppf "@]"
