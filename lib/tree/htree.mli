(** Symmetric clock-distribution trees and skew analysis.

    A balanced binary tree spanning [total_span] halves its branch
    length at every level (the planar H-tree's electrical skeleton).
    Perfectly matched, its skew is zero by construction; the paper's
    point that the return path — and hence the inductance — of
    nominally identical wires can differ makes inductance a CLOCK SKEW
    mechanism, which {!skew} quantifies through the tree moment
    engine. *)

val build :
  levels:int ->
  total_span:float ->
  line:Rlc_core.Line.t ->
  sink_cap:float ->
  Tree.t
(** Balanced binary tree with [2^levels] sinks named "s0", "s1", ...;
    the edge at depth d (0-based) has length total_span / 2^(d+1).
    Raises [Invalid_argument] for levels < 1 or levels > 12. *)

val imbalance_first_branch : (Tree.wire -> Tree.wire) -> Tree.t -> Tree.t
(** Apply a wire transform to the FIRST branch's whole subtree (e.g.
    paint a different inductance on one half of the clock tree, the
    return-path asymmetry scenario).  Identity on sinks. *)

val sink_delays :
  ?f:float -> ?driver_cp:float -> driver_rs:float -> Tree.t ->
  (string * float) list
(** Two-pole 50% delay (via {!Moments}) of every sink. *)

val skew :
  ?f:float -> ?driver_cp:float -> driver_rs:float -> Tree.t -> float
(** max - min over {!sink_delays}. *)

val to_netlist :
  ?segments_per_wire:int ->
  ?driver_rs:float ->
  ?vdd:float ->
  ?t_rise:float ->
  Tree.t ->
  Rlc_circuit.Netlist.t * Rlc_circuit.Netlist.node
  * (string * Rlc_circuit.Netlist.node) list
(** Compile a tree into a full circuit netlist: a step (or DC, when
    [t_rise <= 0]) driver of amplitude [vdd] behind [driver_rs] (0 =
    ideal source) at the root, every edge expanded into a
    [segments_per_wire]-section RL ladder with pi-distributed shunt
    capacitance (see {!Rlc_circuit.Ladder.make}; defaults to one
    section per edge) and every sink load as a capacitor to ground.
    Returns the netlist, the root node and the sink nodes in traversal
    order — inputs for the transient and AC engines, and (as a deep
    tree is 2^levels sinks) the second grid-structured workload the
    sparse solver backend targets.  Raises [Invalid_argument] for
    [segments_per_wire < 1] or [driver_rs < 0]. *)
