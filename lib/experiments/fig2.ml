type case = {
  regime : Rlc_core.Pade.damping;
  l : float;
  waveform : Rlc_waveform.Waveform.t;
  overshoot : float;
}

let compute ?pool ?(node = Rlc_tech.Presets.node_100nm) () =
  let pool =
    match pool with Some p -> p | None -> Rlc_parallel.Pool.sequential
  in
  let rc = Rlc_core.Rc_opt.optimize node in
  let h = rc.Rlc_core.Rc_opt.h_opt and k = rc.Rlc_core.Rc_opt.k_opt in
  let l_crit = Rlc_core.Critical_inductance.of_node node ~h ~k in
  let horizon cs = 8.0 *. cs.Rlc_core.Pade.b1 in
  let mk l =
    let stage = Rlc_core.Stage.of_node node ~l ~h ~k in
    let cs = Rlc_core.Pade.coeffs stage in
    {
      regime = Rlc_core.Pade.classify cs;
      l;
      waveform = Rlc_core.Step_response.waveform cs ~t_end:(horizon cs);
      overshoot = Rlc_core.Step_response.overshoot cs;
    }
  in
  Rlc_parallel.Pool.map_list pool mk
    [ 0.2 *. l_crit; l_crit; 5.0 *. l_crit ]

let regime_name = function
  | Rlc_core.Pade.Underdamped -> "underdamped"
  | Rlc_core.Pade.Critically_damped -> "critical"
  | Rlc_core.Pade.Overdamped -> "overdamped"

let print ?ppf cases =
  let series =
    List.mapi
      (fun i case ->
        let label = (regime_name case.regime).[0] in
        ignore i;
        Rlc_report.Ascii_plot.series ~label
          ~xs:(Rlc_waveform.Waveform.times case.waveform)
          ~ys:(Rlc_waveform.Waveform.values case.waveform))
      cases
  in
  Rlc_report.Ascii_plot.print ?ppf
    ~title:"Figure 2: step responses (o=overdamped, c=critical, u=underdamped)"
    series;
  let t =
    Rlc_report.Table.create ~title:"Figure 2 summary"
      ~columns:[ "regime"; "l (nH/mm)"; "overshoot (%)" ]
  in
  List.iter
    (fun case ->
      Rlc_report.Table.add_row t
        [
          regime_name case.regime;
          Printf.sprintf "%.3f" (case.l *. 1e6);
          Printf.sprintf "%.1f" (case.overshoot *. 100.0);
        ])
    cases;
  Rlc_report.Table.print ?ppf t
