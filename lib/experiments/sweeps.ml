type point = {
  l : float;
  opt : Rlc_core.Rlc_opt.result;
  l_crit : float;
  h_ratio : float;
  k_ratio : float;
  delay_ratio : float;
  rc_sized_penalty : float;
  if_h_ratio : float;
  if_k_ratio : float;
  km_applicable : bool;
  km_delay_error : float;
}

type sweep = { node : Rlc_tech.Node.t; points : point list }

let run ?pool ?(n = 21) node =
  let pool =
    match pool with Some p -> p | None -> Rlc_parallel.Pool.sequential
  in
  let rc = Rlc_core.Rc_opt.optimize node in
  let h_rc = rc.Rlc_core.Rc_opt.h_opt and k_rc = rc.Rlc_core.Rc_opt.k_opt in
  let base = Rlc_core.Rlc_opt.optimize node ~l:0.0 in
  let base_dpl = base.Rlc_core.Rlc_opt.delay_per_length in
  (* each l point is an independent Newton optimization; the pool fans
     them out and slots the results back by index, so the sweep is the
     same list of floats for any domain count *)
  let point i =
        let l =
          float_of_int i /. float_of_int (n - 1) *. node.Rlc_tech.Node.l_max
        in
        let opt = Rlc_core.Rlc_opt.optimize node ~l in
        let opt_stage =
          Rlc_core.Stage.of_node node ~l ~h:opt.Rlc_core.Rlc_opt.h
            ~k:opt.Rlc_core.Rlc_opt.k
        in
        let l_crit = Rlc_core.Critical_inductance.of_stage opt_stage in
        let rc_stage = Rlc_core.Stage.of_node node ~l ~h:h_rc ~k:k_rc in
        let rc_sized_dpl = Rlc_core.Delay.per_unit_length rc_stage in
        let cs = Rlc_core.Pade.coeffs opt_stage in
        let exact = Rlc_core.Delay.of_coeffs cs in
        let km = Rlc_core.Kahng_muddu.delay cs in
        {
          l;
          opt;
          l_crit;
          h_ratio = opt.Rlc_core.Rlc_opt.h /. h_rc;
          k_ratio = opt.Rlc_core.Rlc_opt.k /. k_rc;
          delay_ratio = opt.Rlc_core.Rlc_opt.delay_per_length /. base_dpl;
          rc_sized_penalty =
            rc_sized_dpl /. opt.Rlc_core.Rlc_opt.delay_per_length;
          if_h_ratio = Rlc_core.Ismail_friedman.h_opt node ~l /. h_rc;
          if_k_ratio = Rlc_core.Ismail_friedman.k_opt node ~l /. k_rc;
          km_applicable = Rlc_core.Kahng_muddu.is_applicable cs;
          km_delay_error = km /. exact;
        }
  in
  let points =
    Array.to_list
      (Rlc_parallel.Pool.mapi pool (fun i () -> point i) (Array.make n ()))
  in
  { node; points }

let nh l = l *. 1e6

let figure_table ?ppf ~title ~column ~value sweeps =
  let t =
    Rlc_report.Table.create ~title
      ~columns:
        ("l (nH/mm)"
        :: List.map
             (fun s -> s.node.Rlc_tech.Node.name ^ " " ^ column)
             sweeps)
  in
  (match sweeps with
  | [] -> ()
  | first :: _ ->
      List.iteri
        (fun i p0 ->
          Rlc_report.Table.add_row t
            (Printf.sprintf "%.2f" (nh p0.l)
            :: List.map
                 (fun s -> Printf.sprintf "%.4f" (value (List.nth s.points i)))
                 sweeps))
        first.points);
  Rlc_report.Table.print ?ppf t

let figure_plot ?ppf ~title ~value sweeps =
  let series =
    List.map
      (fun s ->
        Rlc_report.Ascii_plot.series
          ~label:s.node.Rlc_tech.Node.name.[0]
          ~xs:(Array.of_list (List.map (fun p -> nh p.l) s.points))
          ~ys:(Array.of_list (List.map value s.points)))
      sweeps
  in
  Rlc_report.Ascii_plot.print ?ppf ~title series

let print_fig4 ?ppf sweeps =
  figure_table ?ppf
    ~title:"Figure 4: critical inductance l_crit at the optimized (h,k)"
    ~column:"l_crit (nH/mm)"
    ~value:(fun p -> nh p.l_crit)
    sweeps;
  figure_plot ?ppf
    ~title:"Figure 4 (x: l nH/mm, y: l_crit nH/mm; 2=250nm 1=100nm)"
    ~value:(fun p -> nh p.l_crit)
    sweeps

let print_fig5 ?ppf sweeps =
  figure_table ?ppf ~title:"Figure 5: h_optRLC / h_optRC" ~column:"h ratio"
    ~value:(fun p -> p.h_ratio)
    sweeps;
  figure_plot ?ppf ~title:"Figure 5 (x: l nH/mm, y: h ratio)"
    ~value:(fun p -> p.h_ratio)
    sweeps

let print_fig6 ?ppf sweeps =
  figure_table ?ppf ~title:"Figure 6: k_optRLC / k_optRC" ~column:"k ratio"
    ~value:(fun p -> p.k_ratio)
    sweeps;
  figure_plot ?ppf ~title:"Figure 6 (x: l nH/mm, y: k ratio)"
    ~value:(fun p -> p.k_ratio)
    sweeps

let print_fig7 ?ppf sweeps =
  figure_table ?ppf
    ~title:
      "Figure 7: optimized delay-per-length ratio (tau/h)(l) / (tau/h)(0)"
    ~column:"delay ratio"
    ~value:(fun p -> p.delay_ratio)
    sweeps;
  figure_plot ?ppf ~title:"Figure 7 (x: l nH/mm, y: delay ratio)"
    ~value:(fun p -> p.delay_ratio)
    sweeps

let print_fig8 ?ppf sweeps =
  figure_table ?ppf
    ~title:
      "Figure 8: delay penalty of RC-sized repeaters vs RLC-optimal sizing"
    ~column:"penalty"
    ~value:(fun p -> p.rc_sized_penalty)
    sweeps;
  figure_plot ?ppf ~title:"Figure 8 (x: l nH/mm, y: penalty ratio)"
    ~value:(fun p -> p.rc_sized_penalty)
    sweeps

let print_baselines ?ppf sweeps =
  List.iter
    (fun s ->
      let t =
        Rlc_report.Table.create
          ~title:
            (Printf.sprintf
               "Baselines at %s: Ismail-Friedman fit and Kahng-Muddu delay"
               s.node.Rlc_tech.Node.name)
          ~columns:
            [
              "l (nH/mm)"; "h ratio (ours)"; "h ratio (IF)"; "k ratio (ours)";
              "k ratio (IF)"; "KM applicable"; "KM delay / exact";
            ]
      in
      List.iter
        (fun p ->
          Rlc_report.Table.add_row t
            [
              Printf.sprintf "%.2f" (nh p.l);
              Printf.sprintf "%.3f" p.h_ratio;
              Printf.sprintf "%.3f" p.if_h_ratio;
              Printf.sprintf "%.3f" p.k_ratio;
              Printf.sprintf "%.3f" p.if_k_ratio;
              (if p.km_applicable then "yes" else "no");
              Printf.sprintf "%.3f" p.km_delay_error;
            ])
        s.points;
      Rlc_report.Table.print ?ppf t)
    sweeps
