type waveform_case = {
  l : float;
  sim : Rlc_ringosc.Ring.sim;
  measurement : Rlc_ringosc.Analysis.measurement;
}

let waveforms ?pool ?(node = Rlc_tech.Presets.node_100nm) ?(segments = 12)
    ~l_values () =
  let pool =
    match pool with Some p -> p | None -> Rlc_parallel.Pool.sequential
  in
  Rlc_parallel.Pool.map_list pool
    (fun l ->
      let cfg = Rlc_ringosc.Ring.rc_sized_config ~segments node ~l in
      let sim = Rlc_ringosc.Ring.simulate cfg in
      { l; sim; measurement = Rlc_ringosc.Analysis.measure sim })
    l_values

let last_portion w fraction =
  let t0 = Rlc_waveform.Waveform.t_start w in
  let t1 = Rlc_waveform.Waveform.t_end w in
  Rlc_waveform.Waveform.slice w ~t0:(t1 -. (fraction *. (t1 -. t0))) ~t1

let print_waveform_case ?ppf case =
  let m = case.measurement in
  Rlc_report.Report.line ?ppf
    "Ring waveforms at l = %.2f nH/mm: period=%s overshoot=%.3f V undershoot=%.3f V"
    (case.l *. 1e6)
    (match m.Rlc_ringosc.Analysis.period with
    | Some p -> Printf.sprintf "%.3f ns" (p *. 1e9)
    | None -> "none")
    m.Rlc_ringosc.Analysis.input_overshoot
    m.Rlc_ringosc.Analysis.input_undershoot;
  (* plot the last ~3 periods of input and output *)
  let vin = last_portion case.sim.Rlc_ringosc.Ring.in0 0.25 in
  let vout = last_portion case.sim.Rlc_ringosc.Ring.out0 0.25 in
  Rlc_report.Ascii_plot.print ?ppf
    ~title:
      (Printf.sprintf
         "Figures 9/10 style: inverter input (i) and output (o), l = %.2f nH/mm"
         (case.l *. 1e6))
    [
      Rlc_report.Ascii_plot.series ~label:'i'
        ~xs:(Rlc_waveform.Waveform.times vin)
        ~ys:(Rlc_waveform.Waveform.values vin);
      Rlc_report.Ascii_plot.series ~label:'o'
        ~xs:(Rlc_waveform.Waveform.times vout)
        ~ys:(Rlc_waveform.Waveform.values vout);
    ]

type sweep_point = { l : float; m : Rlc_ringosc.Analysis.measurement }

let period_sweep ?pool ?(segments = 12) node ~l_values =
  List.map
    (fun (l, m) -> { l; m })
    (Rlc_ringosc.Analysis.period_sweep ?pool ~segments node ~l_values)

let print_fig11 ?ppf ~node_name points =
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf "Figure 11: ring-oscillator period vs l (%s)" node_name)
      ~columns:[ "l (nH/mm)"; "period (ns)"; "false switching" ]
  in
  (* the period grows with l before collapsing, so the collapse is
     detected against the running maximum, not the l=0 value *)
  let running_max = ref nan in
  List.iter
    (fun { l; m } ->
      let flagged =
        (not (Float.is_nan !running_max))
        && Rlc_ringosc.Analysis.false_switching ~baseline_period:!running_max m
      in
      (match m.Rlc_ringosc.Analysis.period with
      | Some p when not flagged ->
          running_max :=
            (if Float.is_nan !running_max then p else Float.max !running_max p)
      | Some _ | None -> ());
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.2f" (l *. 1e6);
          (match m.Rlc_ringosc.Analysis.period with
          | Some p -> Printf.sprintf "%.3f" (p *. 1e9)
          | None -> "-");
          (if flagged then "YES" else "no");
        ])
    points;
  Rlc_report.Table.print ?ppf t;
  let usable =
    List.filter_map
      (fun { l; m } ->
        Option.map (fun p -> (l *. 1e6, p *. 1e9)) m.Rlc_ringosc.Analysis.period)
      points
  in
  if List.length usable >= 2 then
    Rlc_report.Ascii_plot.print ?ppf
      ~title:
        (Printf.sprintf "Figure 11 (%s; x: l nH/mm, y: period ns)" node_name)
      [
        Rlc_report.Ascii_plot.series ~label:'p'
          ~xs:(Array.of_list (List.map fst usable))
          ~ys:(Array.of_list (List.map snd usable));
      ]

let print_fig12 ?ppf ~node_name points =
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Figure 12: wire current density vs l (%s, top metal)" node_name)
      ~columns:[ "l (nH/mm)"; "J peak (A/cm^2)"; "J rms (A/cm^2)" ]
  in
  List.iter
    (fun { l; m } ->
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.2f" (l *. 1e6);
          Printf.sprintf "%.3e" (m.Rlc_ringosc.Analysis.peak_current_density /. 1e4);
          Printf.sprintf "%.3e" (m.Rlc_ringosc.Analysis.rms_current_density /. 1e4);
        ])
    points;
  Rlc_report.Table.print ?ppf t

let default_l_values () =
  List.init 14 (fun i -> float_of_int i *. 0.4e-6)
