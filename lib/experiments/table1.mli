(** Experiment T1 — regenerate Table 1 of the paper.

    For each technology node: the given per-unit-length parameters, the
    derived RC-optimal repeater insertion (h_optRC, k_optRC, tau_optRC)
    from the closed forms, the inverse derivation of the driver
    parameters from those optima (the paper's SPICE flow run backwards,
    closing the loop), and the analytic extractor's estimate of the
    wire capacitance and inductance range from the Table 1 geometry
    (the FASTCAP / field-solver substitution check). *)

type row = {
  node : Rlc_tech.Node.t;
  rc : Rlc_core.Rc_opt.result;
  rederived_driver : Rlc_tech.Driver.t;
      (** from (r, c, h_opt, k_opt, tau_opt); must round-trip *)
  c_extracted_quiet : float;  (** analytic extraction, quiet neighbours, F/m *)
  c_extracted_worst : float;  (** worst-case Miller switching, F/m *)
  l_loop_min : float;  (** return plane under the line, H/m *)
  l_worst : float;  (** far-return worst case at h_optRC length, H/m *)
}

val compute : ?pool:Rlc_parallel.Pool.t -> unit -> row list
(** One row per preset node; rows fan out over [pool] when given,
    preset order preserved regardless of domain count. *)

val print : ?ppf:Format.formatter -> row list -> unit
(** Defaults [ppf] to {!Format.std_formatter}; flushes it. *)
