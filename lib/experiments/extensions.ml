let default_node = Rlc_tech.Presets.node_100nm

let exact_delay_50 stage =
  let residual t =
    Rlc_numerics.Laplace.step_response
      (fun s -> Rlc_core.Transfer.eval stage s)
      t
    -. 0.5
  in
  let tau2 = Rlc_core.Delay.of_stage stage in
  let lo, hi =
    Rlc_numerics.Roots.bracket_first residual ~t0:1e-13 ~dt:(tau2 /. 24.0)
  in
  Rlc_numerics.Roots.brent residual lo hi

let print_model_accuracy ?(node = default_node) () =
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Ablation: 50%% delay model ladder at %s, RC-sized stage (ps)"
           node.Rlc_tech.Node.name)
      ~columns:
        [
          "l (nH/mm)"; "Elmore"; "Kahng-Muddu"; "Ismail-Friedman";
          "Pade-2 (paper)"; "Pade-3"; "AWE-4"; "exact"; "Pade-2 err%";
          "Pade-3 err%"; "AWE-4 err%";
        ]
  in
  List.iter
    (fun l_nh ->
      let l = l_nh *. 1e-6 in
      let stage = Rlc_core.Rc_opt.stage node ~l in
      let ps x = Printf.sprintf "%.1f" (x *. 1e12) in
      let exact = exact_delay_50 stage in
      let pade2 = Rlc_core.Delay.of_stage stage in
      let pade3 = Rlc_core.Third_order.delay_stage stage in
      let awe4 =
        (* AWE is order-fragile; step down until stable *)
        let rec attempt q =
          if q < 2 then None
          else begin
            let m = Rlc_tree.Awe.of_stage ~order:q stage in
            if m.Rlc_tree.Awe.stable then Some (Rlc_tree.Awe.delay m)
            else attempt (q - 1)
          end
        in
        attempt 4
      in
      let err x = Printf.sprintf "%+.1f" ((x /. exact -. 1.0) *. 100.0) in
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.1f" l_nh;
          ps (Rlc_core.Elmore.stage_delay stage);
          ps (Rlc_core.Kahng_muddu.delay_stage stage);
          ps (Rlc_core.Ismail_friedman.delay_50 stage);
          ps pade2;
          ps pade3;
          (match awe4 with Some d -> ps d | None -> "-");
          ps exact;
          err pade2;
          err pade3;
          (match awe4 with Some d -> err d | None -> "-");
        ])
    [ 0.0; 0.5; 1.0; 2.0; 3.0; 5.0 ];
  Rlc_report.Table.print t

let print_power_pareto ?(node = default_node) ?(l = 1.5e-6) () =
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Extension: power/delay Pareto of repeater sizing (%s, l = %.1f nH/mm)"
           node.Rlc_tech.Node.name (l *. 1e6))
      ~columns:
        [
          "lambda"; "h (mm)"; "k"; "delay (ps/mm)"; "power (mW/mm)";
          "delay penalty %"; "power saving %";
        ]
  in
  List.iteri
    (fun i r ->
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.1f" (float_of_int i /. 10.0);
          Printf.sprintf "%.2f" (r.Rlc_core.Power.h *. 1e3);
          Printf.sprintf "%.0f" r.Rlc_core.Power.k;
          Printf.sprintf "%.2f" (r.Rlc_core.Power.delay_per_length *. 1e9);
          Printf.sprintf "%.4f" (r.Rlc_core.Power.power_per_length *. 1.0);
          Printf.sprintf "%+.1f" ((r.Rlc_core.Power.delay_penalty -. 1.0) *. 100.0);
          Printf.sprintf "%.1f" (r.Rlc_core.Power.power_saving *. 100.0);
        ])
    (Rlc_core.Power.pareto node ~l);
  Rlc_report.Table.print t

let print_crosstalk ?(node = default_node) () =
  let rc = Rlc_core.Rc_opt.optimize node in
  let h = rc.Rlc_core.Rc_opt.h_opt and k = rc.Rlc_core.Rc_opt.k_opt in
  let driver = node.Rlc_tech.Node.driver in
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Extension: coupled-pair switching delays and victim noise (%s)"
           node.Rlc_tech.Node.name)
      ~columns:
        [
          "l self (nH/mm)"; "l mutual"; "even (ps)"; "odd (ps)";
          "nominal (ps)"; "spread %"; "victim noise %";
        ]
  in
  List.iter
    (fun l_nh ->
      let l = l_nh *. 1e-6 in
      let pair =
        Rlc_core.Coupled.of_geometry node.Rlc_tech.Node.geometry ~l_self:l
          ~length:h
      in
      let d = Rlc_core.Coupled.switching_delays pair ~driver ~h ~k in
      let noise = Rlc_core.Coupled.victim_noise_peak pair ~driver ~h ~k in
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.1f" l_nh;
          Printf.sprintf "%.2f" (pair.Rlc_core.Coupled.l_mutual *. 1e6);
          Printf.sprintf "%.1f" (d.Rlc_core.Coupled.even_delay *. 1e12);
          Printf.sprintf "%.1f" (d.Rlc_core.Coupled.odd_delay *. 1e12);
          Printf.sprintf "%.1f" (d.Rlc_core.Coupled.nominal_delay *. 1e12);
          Printf.sprintf "%+.1f" (d.Rlc_core.Coupled.spread *. 100.0);
          Printf.sprintf "%.1f" (noise *. 100.0);
        ])
    [ 0.5; 1.0; 2.0; 3.0; 5.0 ];
  Rlc_report.Table.print t

let print_variation ?pool ?ppf ?(node = default_node) () =
  let rc = Rlc_core.Rc_opt.optimize node in
  let mid_l = 0.5 *. node.Rlc_tech.Node.l_max in
  let mid = Rlc_core.Rlc_opt.optimize node ~l:mid_l in
  let dist = Rlc_core.Variation.default_distribution node in
  let results =
    Rlc_core.Variation.compare_sizings ?pool node dist
      [
        ("rc-sized", rc.Rlc_core.Rc_opt.h_opt, rc.Rlc_core.Rc_opt.k_opt);
        ("rlc-mid-l", mid.Rlc_core.Rlc_opt.h, mid.Rlc_core.Rlc_opt.k);
      ]
  in
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Extension: delay/length under (l, Miller, driver) variation (%s, ps/mm)"
           node.Rlc_tech.Node.name)
      ~columns:[ "sizing"; "mean"; "stddev"; "p95"; "max" ]
  in
  List.iter
    (fun (name, s) ->
      Rlc_report.Table.add_row t
        [
          name;
          Printf.sprintf "%.2f" (s.Rlc_core.Variation.mean *. 1e9);
          Printf.sprintf "%.2f" (s.Rlc_core.Variation.stddev *. 1e9);
          Printf.sprintf "%.2f" (s.Rlc_core.Variation.p95 *. 1e9);
          Printf.sprintf "%.2f" (s.Rlc_core.Variation.max *. 1e9);
        ])
    results;
  Rlc_report.Table.print ?ppf t

let print_wire_sizing ?(node = default_node) () =
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Extension: wire width co-optimization in a fixed %.1f um track (%s)"
           (node.Rlc_tech.Node.geometry.Rlc_extraction.Geometry.pitch *. 1e6)
           node.Rlc_tech.Node.name)
      ~columns:
        [ "width (um)"; "r (ohm/mm)"; "c (pF/m)"; "l (nH/mm)"; "delay (ps/mm)" ]
  in
  let widths = [ 0.5e-6; 1.0e-6; 1.5e-6; 2.0e-6; 3.0e-6; 3.5e-6 ] in
  List.iter
    (fun r ->
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.2f" (r.Rlc_core.Wire_sizing.wire.Rlc_core.Wire_sizing.width *. 1e6);
          Printf.sprintf "%.2f" (r.Rlc_core.Wire_sizing.wire.Rlc_core.Wire_sizing.r /. 1e3);
          Printf.sprintf "%.1f" (r.Rlc_core.Wire_sizing.wire.Rlc_core.Wire_sizing.c *. 1e12);
          Printf.sprintf "%.2f" (r.Rlc_core.Wire_sizing.wire.Rlc_core.Wire_sizing.l *. 1e6);
          Printf.sprintf "%.2f" (r.Rlc_core.Wire_sizing.delay_per_length *. 1e9);
        ])
    (Rlc_core.Wire_sizing.sweep node ~widths);
  let best = Rlc_core.Wire_sizing.optimize node in
  Rlc_report.Table.print t;
  Printf.printf "Optimal width: %.2f um -> %.2f ps/mm\n"
    (best.Rlc_core.Wire_sizing.wire.Rlc_core.Wire_sizing.width *. 1e6)
    (best.Rlc_core.Wire_sizing.delay_per_length *. 1e9)

let print_insertion ?(node = default_node) ?(l = 1.5e-6) () =
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Extension: integer repeater insertion (%s, l = %.1f nH/mm)"
           node.Rlc_tech.Node.name (l *. 1e6))
      ~columns:
        [
          "net (mm)"; "repeaters"; "h (mm)"; "k"; "delay (ps)";
          "continuous bound (ps)"; "quantization %";
        ]
  in
  List.iter
    (fun p ->
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.1f"
            (float_of_int p.Rlc_core.Insertion.segments
            *. p.Rlc_core.Insertion.h *. 1e3);
          string_of_int p.Rlc_core.Insertion.segments;
          Printf.sprintf "%.2f" (p.Rlc_core.Insertion.h *. 1e3);
          Printf.sprintf "%.0f" p.Rlc_core.Insertion.k;
          Printf.sprintf "%.1f" (p.Rlc_core.Insertion.total_delay *. 1e12);
          Printf.sprintf "%.1f" (p.Rlc_core.Insertion.continuous_bound *. 1e12);
          Printf.sprintf "%.2f"
            (p.Rlc_core.Insertion.quantization_penalty *. 100.0);
        ])
    (Rlc_core.Insertion.sweep_lengths node ~l
       ~lengths:[ 0.005; 0.01; 0.02; 0.05; 0.1 ]);
  Rlc_report.Table.print t

let demo_tree node ~l =
  let line = Rlc_core.Line.of_node node ~l in
  let w len = Rlc_tree.Tree.wire_of_line line ~length:len in
  let c0 = node.Rlc_tech.Node.driver.Rlc_tech.Driver.c0 in
  Rlc_tree.Tree.node ~name:"root"
    [
      ( w 0.010,
        Rlc_tree.Tree.node ~name:"j1"
          [
            (w 0.008, Rlc_tree.Tree.sink ~name:"s1" ~cap:(c0 *. 400.0));
            ( w 0.012,
              Rlc_tree.Tree.node ~name:"j2"
                [
                  (w 0.004, Rlc_tree.Tree.sink ~name:"s2" ~cap:(c0 *. 200.0));
                  (w 0.006, Rlc_tree.Tree.sink ~name:"s3" ~cap:(c0 *. 300.0));
                ] );
          ] );
    ]
  |> Rlc_tree.Tree.segment_edges
       ~max_segment:(Rlc_tree.Tree.wire_of_line line ~length:0.003)

let print_tree_buffering ?(node = default_node) () =
  let driver = node.Rlc_tech.Node.driver in
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Extension: RLC-aware van Ginneken buffering of a 3-sink net (%s)"
           node.Rlc_tech.Node.name)
      ~columns:
        [
          "l (nH/mm)"; "unbuffered (ps)"; "RC-planned (ps)";
          "RLC-planned (ps)"; "buffers"; "RC plan penalty %";
        ]
  in
  List.iter
    (fun l_nh ->
      let l = l_nh *. 1e-6 in
      let tree = demo_tree node ~l in
      (* plan ignoring inductance, then pay for it on the real net *)
      let rc_plan =
        Rlc_tree.Buffering.insert ~driver ~root_k:500.0 (demo_tree node ~l:0.0)
      in
      let rc_planned_delay =
        Rlc_tree.Buffering.evaluate ~driver ~root_k:500.0
          ~buffers:rc_plan.Rlc_tree.Buffering.buffers tree
      in
      let rlc_plan = Rlc_tree.Buffering.insert ~driver ~root_k:500.0 tree in
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.1f" l_nh;
          Printf.sprintf "%.1f"
            (rlc_plan.Rlc_tree.Buffering.unbuffered_delay *. 1e12);
          Printf.sprintf "%.1f" (rc_planned_delay *. 1e12);
          Printf.sprintf "%.1f" (rlc_plan.Rlc_tree.Buffering.worst_delay *. 1e12);
          string_of_int (List.length rlc_plan.Rlc_tree.Buffering.buffers);
          Printf.sprintf "%.1f"
            ((rc_planned_delay /. rlc_plan.Rlc_tree.Buffering.worst_delay -. 1.0)
            *. 100.0);
        ])
    [ 0.0; 1.0; 2.0; 4.0 ];
  Rlc_report.Table.print t

let print_sensitivity ?(node = default_node) () =
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Extension: delay sensitivity at the RC-sized stage (%s)"
           node.Rlc_tech.Node.name)
      ~columns:
        [
          "l (nH/mm)"; "dtau/dl (ps per nH/mm)"; "elasticity l";
          "elasticity c"; "elasticity r"; "spread +/-0.5nH/mm (ps)";
        ]
  in
  List.iter
    (fun l_nh ->
      let stage = Rlc_core.Rc_opt.stage node ~l:(l_nh *. 1e-6) in
      let s = Rlc_core.Sensitivity.of_stage stage in
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.1f" l_nh;
          Printf.sprintf "%.2f" (s.Rlc_core.Sensitivity.wrt_l *. 1e12 *. 1e-6);
          Printf.sprintf "%.3f" s.Rlc_core.Sensitivity.elasticity_l;
          Printf.sprintf "%.3f" s.Rlc_core.Sensitivity.elasticity_c;
          Printf.sprintf "%.3f" s.Rlc_core.Sensitivity.elasticity_r;
          Printf.sprintf "%.1f"
            (Rlc_core.Sensitivity.delay_spread_estimate stage
               ~l_uncertainty:0.5e-6
            *. 1e12);
        ])
    [ 0.5; 1.0; 2.0; 3.0; 5.0 ];
  Rlc_report.Table.print t

let print_clock_skew ?(node = default_node) () =
  let line = Rlc_core.Line.of_node node ~l:1.5e-6 in
  let tree =
    Rlc_tree.Htree.build ~levels:4 ~total_span:0.02 ~line
      ~sink_cap:(node.Rlc_tech.Node.driver.Rlc_tech.Driver.c0 *. 500.0)
  in
  let rs = node.Rlc_tech.Node.driver.Rlc_tech.Driver.rs /. 500.0 in
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Extension: clock skew from return-path (inductance) asymmetry \
            (%s, 16-sink 20 mm tree)"
           node.Rlc_tech.Node.name)
      ~columns:[ "dl on one half (nH/mm)"; "skew (ps)"; "vs sink delay (%)" ]
  in
  let nominal =
    match Rlc_tree.Htree.sink_delays ~driver_rs:rs tree with
    | (_, d) :: _ -> d
    | [] -> nan
  in
  List.iter
    (fun dl_nh ->
      let dl = dl_nh *. 1e-6 in
      let bump w =
        {
          w with
          Rlc_tree.Tree.l =
            w.Rlc_tree.Tree.l
            +. (dl *. w.Rlc_tree.Tree.r /. node.Rlc_tech.Node.r);
        }
      in
      let skew =
        Rlc_tree.Htree.skew ~driver_rs:rs
          (Rlc_tree.Htree.imbalance_first_branch bump tree)
      in
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.1f" dl_nh;
          Printf.sprintf "%.1f" (skew *. 1e12);
          Printf.sprintf "%.1f" (skew /. nominal *. 100.0);
        ])
    [ 0.0; 0.5; 1.0; 2.0; 3.0 ];
  Rlc_report.Table.print t

let print_corners ?pool ?ppf ?(node = default_node) () =
  let rc = Rlc_core.Rc_opt.optimize node in
  let h = rc.Rlc_core.Rc_opt.h_opt and k = rc.Rlc_core.Rc_opt.k_opt in
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf "Extension: sign-off corners for the RC-sized design (%s)"
           node.Rlc_tech.Node.name)
      ~columns:
        [ "corner"; "delay (ps/mm)"; "overshoot %"; "underdamped" ]
  in
  List.iter
    (fun e ->
      Rlc_report.Table.add_row t
        [
          e.Rlc_core.Corners.corner.Rlc_core.Corners.name;
          Printf.sprintf "%.2f" (e.Rlc_core.Corners.delay_per_length *. 1e9);
          Printf.sprintf "%.1f" (e.Rlc_core.Corners.overshoot *. 100.0);
          (if e.Rlc_core.Corners.underdamped then "yes" else "no");
        ])
    (Rlc_core.Corners.evaluate ?pool node ~h ~k);
  let lo, hi = Rlc_core.Corners.delay_window ?pool node ~h ~k in
  Rlc_report.Table.print ?ppf t;
  Rlc_report.Report.line ?ppf
    "corner delay window: %.2f .. %.2f ps/mm (%.0f%%)" (lo *. 1e9) (hi *. 1e9)
    ((hi /. lo -. 1.0) *. 100.0)

let print_bus ?(node = default_node) () =
  let rc = Rlc_core.Rc_opt.optimize node in
  let h = rc.Rlc_core.Rc_opt.h_opt and k = rc.Rlc_core.Rc_opt.k_opt in
  let driver = node.Rlc_tech.Node.driver in
  let pair =
    Rlc_core.Coupled.of_geometry node.Rlc_tech.Node.geometry ~l_self:1.5e-6
      ~length:h
  in
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Extension: N-conductor bus modal analysis (%s, l = 1.5 nH/mm)"
           node.Rlc_tech.Node.name)
      ~columns:
        [
          "bus width"; "fastest mode (ps)"; "slowest mode (ps)"; "spread %";
          "victim noise %"; "modal c range";
        ]
  in
  List.iter
    (fun n ->
      let bus = Rlc_core.Bus.of_coupled ~n pair in
      let lo, hi = Rlc_core.Bus.delay_envelope bus ~driver ~h ~k in
      let noise = Rlc_core.Bus.victim_noise_peak bus ~driver ~h ~k in
      let cmin, cmax = Rlc_core.Bus.miller_capacitance_range bus in
      Rlc_report.Table.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.1f" (lo *. 1e12);
          Printf.sprintf "%.1f" (hi *. 1e12);
          Printf.sprintf "%.0f" ((hi -. lo) /. lo *. 100.0);
          Printf.sprintf "%.1f" (noise *. 100.0);
          Printf.sprintf "%.2fx" (cmax /. cmin);
        ])
    [ 2; 3; 5; 8; 16 ];
  Rlc_report.Table.print t

let print_shielding ?(node = default_node) () =
  let rc = Rlc_core.Rc_opt.optimize node in
  let results =
    Rlc_core.Shielding.analyze node ~h:rc.Rlc_core.Rc_opt.h_opt
      ~k:rc.Rlc_core.Rc_opt.k_opt
  in
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf "Extension: shield vs spacing trade-off (%s)"
           node.Rlc_tech.Node.name)
      ~columns:
        [
          "layout"; "c (pF/m)"; "l (nH/mm)"; "delay (ps)"; "spread %";
          "noise %"; "tracks/signal";
        ]
  in
  List.iter
    (fun r ->
      Rlc_report.Table.add_row t
        [
          Format.asprintf "%a" Rlc_core.Shielding.pp_layout
            r.Rlc_core.Shielding.layout;
          Printf.sprintf "%.0f" (r.Rlc_core.Shielding.c_eff *. 1e12);
          Printf.sprintf "%.2f" (r.Rlc_core.Shielding.l_eff *. 1e6);
          Printf.sprintf "%.1f" (r.Rlc_core.Shielding.nominal_delay *. 1e12);
          Printf.sprintf "%.0f" (r.Rlc_core.Shielding.delay_spread *. 100.0);
          Printf.sprintf "%.1f" (r.Rlc_core.Shielding.victim_noise *. 100.0);
          Printf.sprintf "%.0f" r.Rlc_core.Shielding.tracks_per_signal;
        ])
    results;
  Rlc_report.Table.print t

let print_thermal ?(node = default_node) () =
  let g = node.Rlc_tech.Node.geometry in
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Extension: wire self-heating (%s; runaway at %.0f mA rms)"
           node.Rlc_tech.Node.name
           (Rlc_extraction.Thermal.runaway_current g *. 1e3))
      ~columns:
        [ "I rms (mA)"; "J rms (A/cm^2)"; "dT no-feedback (K)"; "dT (K)" ]
  in
  let area = Rlc_extraction.Geometry.cross_section_area g in
  List.iter
    (fun i_ma ->
      let i = i_ma *. 1e-3 in
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.1f" i_ma;
          Printf.sprintf "%.2e" (i /. area /. 1e4);
          Printf.sprintf "%.3f"
            (Rlc_extraction.Thermal.temperature_rise_no_feedback g ~i_rms:i);
          Printf.sprintf "%.3f"
            (Rlc_extraction.Thermal.temperature_rise g ~i_rms:i);
        ])
    [ 1.0; 5.0; 20.0; 50.0; 100.0 ];
  Rlc_report.Table.print t;
  Printf.printf
    "The Figure 12 RMS currents (~5 mA) heat the wire < 0.1 K: the paper's\n\
     reliability conclusion, quantified.\n"

let print_frequency ?(node = default_node) () =
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Extension: frequency-domain view of the RC-sized stage (%s)"
           node.Rlc_tech.Node.name)
      ~columns:
        [
          "l (nH/mm)"; "bandwidth (GHz)"; "resonance (GHz)"; "peaking (dB)";
          "group delay @ 100MHz (ps)";
        ]
  in
  List.iter
    (fun l_nh ->
      let stage = Rlc_core.Rc_opt.stage node ~l:(l_nh *. 1e-6) in
      let bw = Rlc_core.Frequency.bandwidth_3db_opt stage in
      let res = Rlc_core.Frequency.resonance stage in
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.1f" l_nh;
          (match bw with
          | Some f -> Printf.sprintf "%.2f" (f /. 1e9)
          | None -> ">1000");
          (match res with
          | Some (f, _) -> Printf.sprintf "%.2f" (f /. 1e9)
          | None -> "-");
          (match res with
          | Some (_, db) -> Printf.sprintf "%.1f" db
          | None -> "0");
          Printf.sprintf "%.1f" (Rlc_core.Frequency.group_delay stage 1e8 *. 1e12);
        ])
    [ 0.0; 0.5; 1.0; 2.0; 4.0 ];
  Rlc_report.Table.print t

let print_skin ?(node = default_node) () =
  let g = node.Rlc_tech.Node.geometry in
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Extension: skin-effect damping correction (%s, corner %.1f GHz)"
           node.Rlc_tech.Node.name
           (Rlc_extraction.Skin.corner_frequency g /. 1e9))
      ~columns:
        [
          "l (nH/mm)"; "f_ring (GHz)"; "r_eff / r_dc";
          "overshoot dc-r (%)"; "overshoot skin (%)";
        ]
  in
  List.iter
    (fun l_nh ->
      let stage = Rlc_core.Rc_opt.stage node ~l:(l_nh *. 1e-6) in
      let c = Rlc_core.Skin_effect.correct g stage in
      let dc_ov, skin_ov = Rlc_core.Skin_effect.overshoot_comparison g stage in
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.1f" l_nh;
          Printf.sprintf "%.2f" (c.Rlc_core.Skin_effect.frequency /. 1e9);
          Printf.sprintf "%.3f"
            (c.Rlc_core.Skin_effect.r_effective
            /. stage.Rlc_core.Stage.line.Rlc_core.Line.r);
          Printf.sprintf "%.1f" (dc_ov *. 100.0);
          Printf.sprintf "%.1f" (skin_ov *. 100.0);
        ])
    [ 0.5; 1.0; 2.0; 4.0 ];
  Rlc_report.Table.print t

let print_eye ?(node = default_node) () =
  let rc = Rlc_core.Rc_opt.optimize node in
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Extension: PRBS eye opening and jitter of the RC-sized stage (%s)"
           node.Rlc_tech.Node.name)
      ~columns:
        [ "l (nH/mm)"; "eye opening (%)"; "eye low/high (V)"; "jitter (ps)" ]
  in
  List.iter
    (fun l_nh ->
      let cfg =
        Rlc_ringosc.Eye.config ~segments:10 ~bits:32 node ~l:(l_nh *. 1e-6)
          ~h:rc.Rlc_core.Rc_opt.h_opt ~k:rc.Rlc_core.Rc_opt.k_opt
      in
      match Rlc_ringosc.Eye.run cfg with
      | m ->
          Rlc_report.Table.add_row t
            [
              Printf.sprintf "%.1f" l_nh;
              Printf.sprintf "%.1f" (m.Rlc_ringosc.Eye.eye_opening *. 100.0);
              Printf.sprintf "%.2f / %.2f" m.Rlc_ringosc.Eye.eye_low
                m.Rlc_ringosc.Eye.eye_high;
              Printf.sprintf "%.1f" (m.Rlc_ringosc.Eye.jitter *. 1e12);
            ]
      | exception Failure _ ->
          Rlc_report.Table.add_row t
            [ Printf.sprintf "%.1f" l_nh; "collapsed"; "-"; "-" ])
    [ 0.0; 1.0; 2.0; 3.0; 5.0 ];
  Rlc_report.Table.print t

let print_chain ?pool ?ppf ?(node = default_node)
    ?(l_values = [ 0.0; 2.0e-6; 4.0e-6 ]) () =
  let pool =
    match pool with Some p -> p | None -> Rlc_parallel.Pool.sequential
  in
  let t =
    Rlc_report.Table.create
      ~title:
        (Printf.sprintf
           "Control: square-wave-driven 5-stage buffered line (%s)"
           node.Rlc_tech.Node.name)
      ~columns:
        [ "l (nH/mm)"; "input edges"; "output edges"; "false switching" ]
  in
  let checks =
    Rlc_parallel.Pool.map_list pool
      (fun l ->
        let cfg = Rlc_ringosc.Chain.rc_sized_config ~segments:10 node ~l in
        (l, Rlc_ringosc.Chain.check (Rlc_ringosc.Chain.simulate cfg)))
      l_values
  in
  List.iter
    (fun (l, v) ->
      Rlc_report.Table.add_row t
        [
          Printf.sprintf "%.1f" (l *. 1e6);
          string_of_int v.Rlc_ringosc.Chain.input_edges;
          string_of_int v.Rlc_ringosc.Chain.output_edges;
          (if v.Rlc_ringosc.Chain.false_switching then "YES" else "no");
        ])
    checks;
  Rlc_report.Table.print ?ppf t

let print_all_fast ?pool () =
  print_model_accuracy ();
  print_newline ();
  print_power_pareto ();
  print_newline ();
  print_crosstalk ();
  print_newline ();
  print_variation ?pool ();
  print_newline ();
  print_wire_sizing ();
  print_newline ();
  print_insertion ();
  print_newline ();
  print_tree_buffering ();
  print_newline ();
  print_clock_skew ();
  print_newline ();
  print_sensitivity ();
  print_newline ();
  print_corners ?pool ();
  print_newline ();
  print_bus ();
  print_newline ();
  print_shielding ();
  print_newline ();
  print_thermal ();
  print_newline ();
  print_frequency ();
  print_newline ();
  print_skin ();
  print_newline ();
  print_eye ()
