(** Experiments F9-F12 — the ring-oscillator studies of Section 3.3.

    F9/F10: inverter input/output waveforms at l = 1.8 and 2.2 nH/mm
    (100 nm node, RC-sized stages).  F11: oscillation period vs l, with
    the false-switching collapse.  F12: peak and RMS wire current
    densities vs l. *)

type waveform_case = {
  l : float;
  sim : Rlc_ringosc.Ring.sim;
  measurement : Rlc_ringosc.Analysis.measurement;
}

val waveforms :
  ?pool:Rlc_parallel.Pool.t ->
  ?node:Rlc_tech.Node.t ->
  ?segments:int ->
  l_values:float list ->
  unit ->
  waveform_case list
(** Simulate the RC-sized ring at each inductance (defaults: 100 nm
    node, 12 ladder segments).  Independent simulations fan out over
    [pool] when given, results in [l_values] order. *)

val print_waveform_case : ?ppf:Format.formatter -> waveform_case -> unit

type sweep_point = { l : float; m : Rlc_ringosc.Analysis.measurement }

val period_sweep :
  ?pool:Rlc_parallel.Pool.t ->
  ?segments:int ->
  Rlc_tech.Node.t ->
  l_values:float list ->
  sweep_point list

val print_fig11 :
  ?ppf:Format.formatter -> node_name:string -> sweep_point list -> unit

val print_fig12 :
  ?ppf:Format.formatter -> node_name:string -> sweep_point list -> unit
(** Printers default [ppf] to {!Format.std_formatter} and flush it. *)

val default_l_values : unit -> float list
(** 0 .. 5 nH/mm in 0.4 nH/mm steps (H/m). *)
