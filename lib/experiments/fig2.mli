(** Experiment F2 — Figure 2: step response of the second-order model
    in its three damping regimes.

    The stage is the RC-optimally-sized 100 nm configuration; the line
    inductance is set below, at and above the critical value of
    equation (4) to produce the overdamped, critically damped and
    underdamped responses. *)

type case = {
  regime : Rlc_core.Pade.damping;
  l : float;  (** H/m *)
  waveform : Rlc_waveform.Waveform.t;  (** normalized to V0 = 1 *)
  overshoot : float;  (** fraction of final value *)
}

val compute :
  ?pool:Rlc_parallel.Pool.t -> ?node:Rlc_tech.Node.t -> unit -> case list
(** The three damping cases are independent and fan out over [pool]
    when given; output order (over/critical/under) is fixed. *)

val print : ?ppf:Format.formatter -> case list -> unit
(** Defaults [ppf] to {!Format.std_formatter}; flushes it. *)
