type row = {
  node : Rlc_tech.Node.t;
  rc : Rlc_core.Rc_opt.result;
  rederived_driver : Rlc_tech.Driver.t;
  c_extracted_quiet : float;
  c_extracted_worst : float;
  l_loop_min : float;
  l_worst : float;
}

let compute ?pool () =
  let pool =
    match pool with Some p -> p | None -> Rlc_parallel.Pool.sequential
  in
  Rlc_parallel.Pool.map_list pool
    (fun node ->
      let rc = Rlc_core.Rc_opt.optimize node in
      let rederived_driver =
        Rlc_core.Rc_opt.derive_driver ~r:node.Rlc_tech.Node.r
          ~c:node.Rlc_tech.Node.c ~h_opt:rc.Rlc_core.Rc_opt.h_opt
          ~k_opt:rc.Rlc_core.Rc_opt.k_opt ~tau_opt:rc.Rlc_core.Rc_opt.tau_opt
      in
      let geometry = node.Rlc_tech.Node.geometry in
      let c_quiet = Rlc_extraction.Capacitance.total ~miller:1.0 geometry in
      let _, c_worst = Rlc_extraction.Capacitance.miller_range geometry in
      let l_min = Rlc_extraction.Inductance.microstrip_loop geometry in
      let l_worst =
        Rlc_extraction.Inductance.worst_case geometry
          ~length:rc.Rlc_core.Rc_opt.h_opt
      in
      {
        node;
        rc;
        rederived_driver;
        c_extracted_quiet = c_quiet;
        c_extracted_worst = c_worst;
        l_loop_min = l_min;
        l_worst;
      })
    Rlc_tech.Presets.all

let print ?ppf rows =
  let t =
    Rlc_report.Table.create ~title:"Table 1: technology parameters (paper-given + derived)"
      ~columns:
        [
          "node"; "r(ohm/mm)"; "c(pF/m)"; "h_optRC(mm)"; "k_optRC";
          "tau_optRC(ps)"; "rs(kohm)"; "c0(fF)"; "cp(fF)";
        ]
  in
  List.iter
    (fun row ->
      let d = row.rederived_driver in
      Rlc_report.Table.add_row t
        [
          row.node.Rlc_tech.Node.name;
          Printf.sprintf "%.1f" (row.node.Rlc_tech.Node.r /. 1e3);
          Printf.sprintf "%.2f" (row.node.Rlc_tech.Node.c *. 1e12);
          Printf.sprintf "%.1f" (row.rc.Rlc_core.Rc_opt.h_opt *. 1e3);
          Printf.sprintf "%.0f" row.rc.Rlc_core.Rc_opt.k_opt;
          Printf.sprintf "%.2f" (row.rc.Rlc_core.Rc_opt.tau_opt *. 1e12);
          Printf.sprintf "%.3f" (d.Rlc_tech.Driver.rs /. 1e3);
          Printf.sprintf "%.4f" (d.Rlc_tech.Driver.c0 *. 1e15);
          Printf.sprintf "%.4f" (d.Rlc_tech.Driver.cp *. 1e15);
        ])
    rows;
  Rlc_report.Table.print ?ppf t;
  let e =
    Rlc_report.Table.create
      ~title:"Table 1 cross-check: analytic extraction vs paper values"
      ~columns:
        [
          "node"; "c paper(pF/m)"; "c quiet(pF/m)"; "c worst(pF/m)";
          "l min(nH/mm)"; "l worst(nH/mm)";
        ]
  in
  List.iter
    (fun row ->
      Rlc_report.Table.add_row e
        [
          row.node.Rlc_tech.Node.name;
          Printf.sprintf "%.1f" (row.node.Rlc_tech.Node.c *. 1e12);
          Printf.sprintf "%.1f" (row.c_extracted_quiet *. 1e12);
          Printf.sprintf "%.1f" (row.c_extracted_worst *. 1e12);
          Printf.sprintf "%.3f" (row.l_loop_min *. 1e6);
          Printf.sprintf "%.3f" (row.l_worst *. 1e6);
        ])
    rows;
  Rlc_report.Table.print ?ppf e
