(** Experiments F4-F8 — the inductance sweeps of Section 3.1 / 3.2.

    One sweep per technology node computes everything Figures 4-8 plot:
    the optimized (h, k) and delay per unit length, the critical
    inductance at the optimum, the ratios against the Elmore/RC-optimal
    sizing, the fixed-RC-sizing delay penalty, and the Ismail-Friedman
    and Kahng-Muddu baselines for comparison. *)

type point = {
  l : float;  (** line inductance, H/m *)
  opt : Rlc_core.Rlc_opt.result;  (** RLC-optimal (h, k, tau) *)
  l_crit : float;  (** critical inductance at the optimized (h, k), H/m *)
  h_ratio : float;  (** h_optRLC / h_optRC — Figure 5 *)
  k_ratio : float;  (** k_optRLC / k_optRC — Figure 6 *)
  delay_ratio : float;
      (** (tau/h)_optRLC(l) / (tau/h)_optRLC(0) — Figure 7 *)
  rc_sized_penalty : float;
      (** [tau(h_RC, k_RC; l) / h_RC] / (tau/h)_optRLC(l) — Figure 8 *)
  if_h_ratio : float;  (** Ismail-Friedman h correction (baseline) *)
  if_k_ratio : float;  (** Ismail-Friedman k correction (baseline) *)
  km_applicable : bool;
      (** whether the Kahng-Muddu approximation is outside its
          critical-damping fallback at the optimized stage *)
  km_delay_error : float;
      (** Kahng-Muddu delay / exact delay at the optimized stage *)
}

type sweep = { node : Rlc_tech.Node.t; points : point list }

val run : ?pool:Rlc_parallel.Pool.t -> ?n:int -> Rlc_tech.Node.t -> sweep
(** Sweep l over [0, node.l_max] with [n] points (default 21).  The
    per-l optimizations are independent; when [pool] is given they fan
    out across its domains, with results slotted back by index so the
    sweep is bit-identical for any domain count. *)

val print_fig4 : ?ppf:Format.formatter -> sweep list -> unit
val print_fig5 : ?ppf:Format.formatter -> sweep list -> unit
val print_fig6 : ?ppf:Format.formatter -> sweep list -> unit
val print_fig7 : ?ppf:Format.formatter -> sweep list -> unit
(** Figure 7 additionally expects the 100nm-with-250nm-dielectric
    ablation sweep in the list. *)

val print_fig8 : ?ppf:Format.formatter -> sweep list -> unit
val print_baselines : ?ppf:Format.formatter -> sweep list -> unit
(** Extra table: our optimizer against the Ismail-Friedman and
    Kahng-Muddu baselines.  All printers default [ppf] to
    {!Format.std_formatter} and flush it before returning. *)
