(** Beyond-the-paper experiments: ablations of the paper's modelling
    choices and the extension studies DESIGN.md calls out.

    - model accuracy ladder: Elmore / Kahng-Muddu / Ismail-Friedman /
      2nd-order Padé (the paper's choice) / 3rd-order / exact (Talbot),
      quantifying what the second-order truncation costs;
    - power-delay Pareto front of repeater sizing;
    - coupled-line switching-delay spread and victim crosstalk noise;
    - delay distributions under inductance/Miller/driver variation;
    - wire-width co-optimization inside a fixed routing track;
    - integer repeater insertion for fixed-length nets;
    - the square-wave-driven buffered chain (the paper's control for
      the ring-oscillator false-switching result). *)

val print_model_accuracy : ?node:Rlc_tech.Node.t -> unit -> unit
val print_power_pareto : ?node:Rlc_tech.Node.t -> ?l:float -> unit -> unit
val print_crosstalk : ?node:Rlc_tech.Node.t -> unit -> unit
val print_variation :
  ?pool:Rlc_parallel.Pool.t -> ?ppf:Format.formatter ->
  ?node:Rlc_tech.Node.t -> unit -> unit
(** Monte-Carlo delay distributions; the per-sample solves fan out
    over [pool] when given (results independent of domain count). *)

val print_wire_sizing : ?node:Rlc_tech.Node.t -> unit -> unit
val print_insertion : ?node:Rlc_tech.Node.t -> ?l:float -> unit -> unit
val print_tree_buffering : ?node:Rlc_tech.Node.t -> unit -> unit
val print_clock_skew : ?node:Rlc_tech.Node.t -> unit -> unit
val print_sensitivity : ?node:Rlc_tech.Node.t -> unit -> unit
val print_corners :
  ?pool:Rlc_parallel.Pool.t -> ?ppf:Format.formatter ->
  ?node:Rlc_tech.Node.t -> unit -> unit
(** Corner sign-off; one corner per pool slot when [pool] is given. *)

val print_bus : ?node:Rlc_tech.Node.t -> unit -> unit
val print_shielding : ?node:Rlc_tech.Node.t -> unit -> unit
val print_thermal : ?node:Rlc_tech.Node.t -> unit -> unit
val print_frequency : ?node:Rlc_tech.Node.t -> unit -> unit
val print_skin : ?node:Rlc_tech.Node.t -> unit -> unit
val print_eye : ?node:Rlc_tech.Node.t -> unit -> unit

val print_chain :
  ?pool:Rlc_parallel.Pool.t -> ?ppf:Format.formatter ->
  ?node:Rlc_tech.Node.t -> ?l_values:float list -> unit -> unit
(** Transient simulations — a couple of seconds per inductance value;
    one simulation per pool slot when [pool] is given. *)

val print_all_fast : ?pool:Rlc_parallel.Pool.t -> unit -> unit
(** Everything except [print_chain]. *)
