(** Waveform measurements used by the paper's experiments: threshold
    delays, overshoot/undershoot (signal integrity, Section 3.3),
    oscillation period (Figure 11) and peak/rms levels (Figure 12). *)

type direction = Rising | Falling | Either

val crossings : ?direction:direction -> Waveform.t -> level:float -> float list
(** Interpolated times at which the waveform crosses [level], in
    order.  A sample exactly at the level counts with the sign of the
    surrounding segment. *)

val first_crossing :
  ?direction:direction -> Waveform.t -> level:float -> float option

val threshold_delay :
  Waveform.t -> fraction:float -> v_final:float -> float option
(** Delay to the first crossing of [fraction * v_final] (the paper's
    "f x 100% delay"), measured from the waveform start. *)

val overshoot : Waveform.t -> v_final:float -> float
(** max(0, max(w) - v_final): how far the response exceeds its settled
    value.  In volts, not percent. *)

val undershoot_below : Waveform.t -> floor:float -> float
(** max(0, floor - min(w)): excursion below [floor] (e.g. ground). *)

val settling_time :
  Waveform.t -> v_final:float -> band:float -> float option
(** Earliest time after which the waveform stays within
    [band * |v_final|] of [v_final] until the end. *)

val period : ?level:float -> Waveform.t -> float option
(** Oscillation period estimated as the mean spacing of same-direction
    (rising) crossings of [level] (default: midpoint of min/max).
    [None] with fewer than two rising crossings. *)

type edge = Rise | Fall

val full_transitions : Waveform.t -> lo:float -> hi:float -> (float * edge) list
(** Schmitt-trigger edge detection: a [Rise] is registered when the
    waveform crosses above [hi] having previously been below [lo] (and
    symmetrically for [Fall]).  Ringing between the two levels produces
    no events, so only genuine full-swing transitions are counted —
    the right notion of "switching" for the ring-oscillator
    experiments.  Requires [lo < hi]. *)

val schmitt_period : Waveform.t -> lo:float -> hi:float -> float option
(** Mean spacing of consecutive [Rise] events from
    {!full_transitions}; [None] with fewer than two. *)

val peak_abs : Waveform.t -> float
(** Maximum of |w| over the record. *)

val rms : Waveform.t -> float
(** Time-weighted RMS over the record span. *)

val rms_over_period : ?level:float -> Waveform.t -> float option
(** RMS restricted to an integral number of detected periods (at least
    one); falls back to [None] when no period is detectable. *)
