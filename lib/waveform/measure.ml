type direction = Rising | Falling | Either

let accepts direction y0 y1 =
  match direction with
  | Rising -> y1 > y0
  | Falling -> y1 < y0
  | Either -> true

let crossings ?(direction = Either) w ~level =
  let ts = Waveform.times w and ys = Waveform.values w in
  let acc = ref [] in
  for i = 0 to Array.length ts - 2 do
    let d0 = ys.(i) -. level and d1 = ys.(i + 1) -. level in
    if d0 *. d1 < 0.0 && accepts direction ys.(i) ys.(i + 1) then
      acc :=
        Rlc_numerics.Interp.crossing ~x0:ts.(i) ~y0:ys.(i) ~x1:ts.(i + 1)
          ~y1:ys.(i + 1) ~level
        :: !acc
    else if d0 = 0.0 && d1 <> 0.0 && accepts direction ys.(i) ys.(i + 1) then
      acc := ts.(i) :: !acc
  done;
  List.rev !acc

let first_crossing ?direction w ~level =
  match crossings ?direction w ~level with [] -> None | t :: _ -> Some t

let threshold_delay w ~fraction ~v_final =
  if fraction < 0.0 || fraction >= 1.0 then
    invalid_arg "Measure.threshold_delay: fraction must be in [0,1)";
  let level = fraction *. v_final in
  let direction = if v_final >= 0.0 then Rising else Falling in
  match first_crossing ~direction w ~level with
  | Some t -> Some (t -. Waveform.t_start w)
  | None -> None

let overshoot w ~v_final =
  Float.max 0.0 (Rlc_numerics.Stats.max (Waveform.values w) -. v_final)

let undershoot_below w ~floor =
  Float.max 0.0 (floor -. Rlc_numerics.Stats.min (Waveform.values w))

let settling_time w ~v_final ~band =
  let tol = band *. Float.abs v_final in
  let ts = Waveform.times w and ys = Waveform.values w in
  let n = Array.length ts in
  (* walk backwards to find the last sample outside the band *)
  let rec last_outside i =
    if i < 0 then None
    else if Float.abs (ys.(i) -. v_final) > tol then Some i
    else last_outside (i - 1)
  in
  match last_outside (n - 1) with
  | None -> Some (Waveform.t_start w)
  | Some i when i = n - 1 -> None (* never settles *)
  | Some i ->
      (* settled from the crossing between sample i and i+1 *)
      let y0 = ys.(i) and y1 = ys.(i + 1) in
      let level =
        if y0 > v_final +. tol then v_final +. tol else v_final -. tol
      in
      if (y0 -. level) *. (y1 -. level) <= 0.0 then
        Some
          (Rlc_numerics.Interp.crossing ~x0:ts.(i) ~y0 ~x1:ts.(i + 1) ~y1
             ~level)
      else Some ts.(i + 1)

let default_level w =
  let lo, hi = Rlc_numerics.Stats.min_max (Waveform.values w) in
  0.5 *. (lo +. hi)

let period ?level w =
  let level = match level with Some l -> l | None -> default_level w in
  match crossings ~direction:Rising w ~level with
  | t0 :: (_ :: _ as rest) ->
      let last = List.nth rest (List.length rest - 1) in
      let n = List.length rest in
      Some ((last -. t0) /. float_of_int n)
  | _ -> None

type edge = Rise | Fall

let full_transitions w ~lo ~hi =
  if lo >= hi then invalid_arg "Measure.full_transitions: lo >= hi";
  let ts = Waveform.times w and ys = Waveform.values w in
  let events = ref [] in
  (* three-valued state: currently latched High, latched Low, or not
     yet determined (before the first excursion outside [lo, hi]) *)
  let state = ref (if ys.(0) >= hi then `High else if ys.(0) <= lo then `Low else `Unknown) in
  Array.iteri
    (fun i y ->
      match !state with
      | `Unknown -> if y >= hi then state := `High else if y <= lo then state := `Low
      | `Low ->
          if y >= hi then begin
            state := `High;
            events := (ts.(i), Rise) :: !events
          end
      | `High ->
          if y <= lo then begin
            state := `Low;
            events := (ts.(i), Fall) :: !events
          end)
    ys;
  List.rev !events

let schmitt_period w ~lo ~hi =
  let rises =
    List.filter_map
      (fun (t, e) -> match e with Rise -> Some t | Fall -> None)
      (full_transitions w ~lo ~hi)
  in
  match rises with
  | t0 :: (_ :: _ as rest) ->
      let last = List.nth rest (List.length rest - 1) in
      Some ((last -. t0) /. float_of_int (List.length rest))
  | _ -> None

let peak_abs w =
  Rlc_numerics.Stats.max (Array.map Float.abs (Waveform.values w))

let rms w =
  Rlc_numerics.Stats.rms_sampled ~xs:(Waveform.times w)
    ~ys:(Waveform.values w)

let rms_over_period ?level w =
  let level = match level with Some l -> l | None -> default_level w in
  match crossings ~direction:Rising w ~level with
  | t0 :: (_ :: _ as rest) ->
      let t1 = List.nth rest (List.length rest - 1) in
      let sliced = Waveform.slice w ~t0 ~t1 in
      Some
        (Rlc_numerics.Stats.rms_sampled ~xs:(Waveform.times sliced)
           ~ys:(Waveform.values sliced))
  | _ -> None
