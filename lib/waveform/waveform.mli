(** Uniformly or non-uniformly sampled real-valued waveforms.

    Transient simulation results and analytic step responses both
    materialise as waveforms; the [Measure] module extracts the
    quantities the paper reports from them. *)

type t
(** Immutable sampled signal: strictly increasing times, one value per
    sample. *)

val create : times:float array -> values:float array -> t
(** Raises [Invalid_argument] when the arrays differ in length, are
    empty, or times are not strictly increasing. *)

val of_fn : ?n:int -> (float -> float) -> t0:float -> t1:float -> t
(** [of_fn f ~t0 ~t1] samples [f] at [n] (default 1000) uniform points
    including both endpoints. *)

val times : t -> float array
val values : t -> float array
val length : t -> int
val t_start : t -> float
val t_end : t -> float
val duration : t -> float

val value_at : t -> float -> float
(** Linear interpolation, clamped outside the domain. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
(** Pointwise combination; both waveforms must share their time axis
    exactly, else [Invalid_argument]. *)

val slice : t -> t0:float -> t1:float -> t
(** Samples with [t0 <= t <= t1]; raises [Invalid_argument] when fewer
    than one sample survives. *)

val shift : t -> float -> t
(** [shift w dt] translates the time axis by [dt]. *)

val iter : (float -> float -> unit) -> t -> unit
val fold : ('a -> float -> float -> 'a) -> 'a -> t -> 'a

val pp : Format.formatter -> t -> unit
(** Short summary (sample count, span, min/max). *)
