type t = { times : float array; values : float array }

let create ~times ~values =
  let n = Array.length times in
  if n = 0 || Array.length values <> n then
    invalid_arg "Waveform.create: empty or mismatched arrays";
  for i = 1 to n - 1 do
    if times.(i) <= times.(i - 1) then
      invalid_arg "Waveform.create: times not strictly increasing"
  done;
  { times = Array.copy times; values = Array.copy values }

let of_fn ?(n = 1000) f ~t0 ~t1 =
  if n < 2 then invalid_arg "Waveform.of_fn: n < 2";
  if t1 <= t0 then invalid_arg "Waveform.of_fn: t1 <= t0";
  let dt = (t1 -. t0) /. float_of_int (n - 1) in
  let times = Array.init n (fun i -> t0 +. (float_of_int i *. dt)) in
  { times; values = Array.map f times }

let times w = Array.copy w.times
let values w = Array.copy w.values
let length w = Array.length w.times
let t_start w = w.times.(0)
let t_end w = w.times.(Array.length w.times - 1)
let duration w = t_end w -. t_start w

let value_at w t =
  if Array.length w.times = 1 then w.values.(0)
  else Rlc_numerics.Interp.linear ~xs:w.times ~ys:w.values t

let map f w = { w with values = Array.map f w.values }

let map2 f a b =
  if
    Array.length a.times <> Array.length b.times
    || not (Array.for_all2 Float.equal a.times b.times)
  then invalid_arg "Waveform.map2: time axes differ";
  { a with values = Array.map2 f a.values b.values }

let slice w ~t0 ~t1 =
  let keep = ref [] in
  for i = Array.length w.times - 1 downto 0 do
    if w.times.(i) >= t0 && w.times.(i) <= t1 then keep := i :: !keep
  done;
  match !keep with
  | [] -> invalid_arg "Waveform.slice: empty result"
  | idx ->
      let idx = Array.of_list idx in
      {
        times = Array.map (fun i -> w.times.(i)) idx;
        values = Array.map (fun i -> w.values.(i)) idx;
      }

let shift w dt = { w with times = Array.map (fun t -> t +. dt) w.times }

let iter f w = Array.iteri (fun i t -> f t w.values.(i)) w.times

let fold f init w =
  let acc = ref init in
  Array.iteri (fun i t -> acc := f !acc t w.values.(i)) w.times;
  !acc

let pp ppf w =
  let lo, hi = Rlc_numerics.Stats.min_max w.values in
  Format.fprintf ppf "waveform<%d samples, t=[%g,%g], y=[%g,%g]>" (length w)
    (t_start w) (t_end w) lo hi
