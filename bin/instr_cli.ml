(* Shared command-line wiring for the rlc binaries: the --stats /
   --trace instrumentation switches and the -j/--jobs pool sizing.
   Keeping them here makes rlcopt, rlcsim and rlcserved flag-compatible
   (one doc string, one default, one Control.setup call). *)

open Cmdliner

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print solver/engine/pool metrics and span timings to stderr on \
           exit ($(b,RLC_STATS=1) enables the recording by default). \
           Recording never changes any computed result.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE.json"
        ~doc:
          "Write a Chrome trace_event JSON of all recorded spans to \
           $(docv) on exit (load it in about:tracing or Perfetto). \
           Implies enabling recording.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE.jsonl"
        ~doc:
          "Write the structured event journal (job lifecycle, cache \
           traffic, solver fallbacks, numerical-health events — one JSON \
           object per line, each tagged with its job's provenance id) to \
           $(docv) on exit.  Implies enabling recording.  Analyse with \
           $(b,rlcstat).")

let trace_cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "trace-cap" ] ~docv:"N"
        ~doc:
          "Per-domain Chrome-trace event buffer cap (default \
           $(b,RLC_TRACE_CAP) or 200000). Overflow drops events, never \
           blocks.")

(* Prepend to a subcommand's term: runs Control.setup before the
   command body, so at-exit dumps are registered first. *)
let term =
  Term.(
    const (fun stats trace journal trace_cap ->
        Rlc_instr.Control.setup ~stats ?trace ?journal ?trace_cap ())
    $ stats_arg $ trace_arg $ journal_arg $ trace_cap_arg)

let jobs_arg ~doc =
  Arg.(
    value
    & opt int (Rlc_parallel.Pool.default_domains ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let default_jobs_doc =
  "Worker domains for the parallel fan-outs (default: $(b,RLC_JOBS) or \
   the machine's recommended domain count). Results are bit-identical \
   for any value."

let pool_of_jobs jobs = Rlc_parallel.Pool.create ~domains:jobs ()
