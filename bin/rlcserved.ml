(* rlcserved -- long-running batch job service over the MNA engines.

   Reads line-delimited jobs (see Rlc_serve.Protocol) from a file or
   stdin, streams one result line per job to stdout, and prints a
   throughput/cache/latency summary to stderr on shutdown.

   Usage:  rlcserved --jobs-file examples/jobs/demo.jobs
           ... | rlcserved -j 4 --stats *)

open Cmdliner
module Serve = Rlc_serve.Service

let jobs_file_arg =
  Arg.(
    value
    & opt (some non_dir_file) None
    & info [ "jobs-file" ] ~docv:"FILE"
        ~doc:
          "Read job lines from $(docv) instead of standard input (one job \
           per line; see the Rlc_serve.Protocol grammar).")

let cache_arg =
  Arg.(
    value
    & opt int Serve.default_config.cache_capacity
    & info [ "cache" ] ~docv:"N"
        ~doc:
          "Compiled-deck cache capacity in structural families (0 \
           disables caching; every deck then recompiles).")

let batch_arg =
  Arg.(
    value
    & opt int Serve.default_config.batch_size
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Jobs gathered per parallel batch. Result order is always the \
           input order, whatever the batch size or domain count.")

let jobs_arg =
  Instr_cli.jobs_arg
    ~doc:
      "Worker domains executing jobs of a batch in parallel (default: \
       $(b,RLC_JOBS) or the machine's recommended domain count). The \
       result stream is bit-identical for any value."

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ] ~doc:"Suppress the shutdown summary on stderr.")

let run () jobs_file jobs cache_capacity batch_size quiet =
  if cache_capacity < 0 then begin
    Printf.eprintf "rlcserved: --cache must be >= 0\n";
    exit 2
  end;
  if batch_size < 1 then begin
    Printf.eprintf "rlcserved: --batch must be >= 1\n";
    exit 2
  end;
  (* Latency quantiles in the summary come from the metrics histograms,
     so the service records even when --stats did not request the
     at-exit metrics dump. *)
  Rlc_instr.Control.set_enabled true;
  let config =
    {
      Serve.pool = Instr_cli.pool_of_jobs jobs;
      cache_capacity;
      memo_capacity = Serve.default_config.memo_capacity;
      batch_size;
    }
  in
  let service = Serve.create ~config () in
  (match jobs_file with
  | Some path ->
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Serve.run_channel service ic stdout)
  | None -> Serve.run_channel service stdin stdout);
  if not quiet then Serve.pp_summary Format.err_formatter service

let cmd =
  Cmd.v
    (Cmd.info "rlcserved" ~version:"1.0.0"
       ~doc:
         "Batch job service: DC / AC / transient / delay queries over \
          SPICE-flavoured RLC decks, with compiled-deck caching.")
    Term.(
      const run $ Instr_cli.term $ jobs_file_arg $ jobs_arg $ cache_arg
      $ batch_arg $ quiet_arg)

let () = exit (Cmd.eval cmd)
