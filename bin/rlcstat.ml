(* rlcstat: offline analysis of rlc observability artifacts.

   Two modes over the two artifact kinds the instrumented binaries
   emit:

     rlcstat [report] j1.jsonl [j2.jsonl ...]
       health/latency rollup over one or more event journals
       (written by --journal): job counts and error rates per query
       kind with exact p50/p90/p99 latencies, cache hit/miss/resym
       traffic, solver fallback and SMW guard-trip rates, health
       classifications.

     rlcstat diff old.json new.json [--threshold 0.10]
       compare two JSON snapshots (BENCH_*.json) leaf by leaf and
       flag every numeric metric whose relative change exceeds the
       threshold.  Exits 1 when anything is flagged, so it works as
       a CI regression gate; identical inputs always exit 0.

   All analysis logic lives in Rlc_instr.Stat so the test suite can
   drive it without a subprocess; this file is flag parsing only. *)

open Cmdliner
module Stat = Rlc_instr.Stat
module Jsonv = Rlc_instr.Jsonv

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fail fmt = Printf.ksprintf (fun m -> `Error (false, m)) fmt

(* ---------------- report ---------------- *)

let report files =
  match
    List.fold_left
      (fun (acc, sk) path ->
        let es, s = Stat.entries_of_file path in
        (acc @ es, sk + s))
      ([], 0) files
  with
  | entries, skipped ->
      Format.printf "%a" Stat.pp_rollup (Stat.rollup ~skipped entries);
      `Ok 0
  | exception Sys_error msg -> fail "%s" msg

let journal_files =
  Arg.(
    non_empty
    & pos_all file []
    & info [] ~docv:"JOURNAL.jsonl"
        ~doc:"Event journal(s) written by --journal; merged before rollup.")

let report_term = Term.(ret (const report $ journal_files))

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Health/latency rollup over journal files (the default command).")
    report_term

(* ---------------- diff ---------------- *)

let diff threshold old_path new_path =
  match (Jsonv.parse (read_file old_path), Jsonv.parse (read_file new_path)) with
  | Error msg, _ -> fail "%s: %s" old_path msg
  | _, Error msg -> fail "%s: %s" new_path msg
  | Ok old_json, Ok new_json ->
      let findings = Stat.diff ~threshold old_json new_json in
      List.iter
        (fun f -> Format.printf "%a@." Stat.pp_finding f)
        findings;
      if findings = [] then begin
        Format.printf "no metric moved more than %.0f%%@."
          (100.0 *. threshold);
        `Ok 0
      end
      else begin
        Format.printf "%d metric(s) moved more than %.0f%%@."
          (List.length findings)
          (100.0 *. threshold);
        `Ok 1
      end
  | exception Sys_error msg -> fail "%s" msg

let threshold_arg =
  Arg.(
    value & opt float 0.10
    & info [ "threshold" ] ~docv:"FRACTION"
        ~doc:
          "Relative change above which a metric is flagged (0.10 = 10%). \
           Leaves present in only one snapshot are never flagged.")

let old_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"OLD.json" ~doc:"Baseline snapshot.")

let new_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"NEW.json" ~doc:"Candidate snapshot.")

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Flag numeric metrics that moved more than the threshold between \
          two JSON snapshots; exit 1 when any did.")
    Term.(ret (const diff $ threshold_arg $ old_arg $ new_arg))

(* ---------------- entry point ---------------- *)

let () =
  let info =
    Cmd.info "rlcstat" ~version:"%%VERSION%%"
      ~doc:"Analyse rlc event journals and bench snapshots."
  in
  (* [rlcstat j.jsonl] should mean [rlcstat report j.jsonl]: a first
     positional that is not a known command name routes to report. *)
  let argv =
    let v = Sys.argv in
    if
      Array.length v > 1
      && String.length v.(1) > 0
      && v.(1).[0] <> '-'
      && v.(1) <> "diff"
      && v.(1) <> "report"
    then Array.concat [ [| v.(0); "report" |]; Array.sub v 1 (Array.length v - 1) ]
    else v
  in
  exit
    (Cmd.eval' ~argv (Cmd.group ~default:report_term info [ report_cmd; diff_cmd ]))
