(* rlcopt -- command-line front end to the RLC interconnect
   performance-optimization library (reproduction of Banerjee &
   Mehrotra, DAC 2001). *)

open Cmdliner

let node_conv =
  let parse s =
    match Rlc_tech.Presets.find s with
    | Some node -> Ok node
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown node %S (expected 250nm, 100nm or 100nm-c250)" s))
  in
  let print ppf node = Format.pp_print_string ppf node.Rlc_tech.Node.name in
  Arg.conv (parse, print)

let node_arg =
  Arg.(
    value
    & opt node_conv Rlc_tech.Presets.node_100nm
    & info [ "n"; "node" ] ~docv:"NODE"
        ~doc:"Technology node: 250nm, 100nm or 100nm-c250.")

let jobs_arg = Instr_cli.jobs_arg ~doc:Instr_cli.default_jobs_doc
let pool_of_jobs = Instr_cli.pool_of_jobs

(* shared --stats / --trace wiring, prepended to every subcommand *)
let instr_term = Instr_cli.term

let l_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "l"; "inductance" ] ~docv:"L"
        ~doc:"Line inductance in nH/mm.")

let f_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "f"; "fraction" ] ~docv:"F"
        ~doc:"Delay threshold fraction (0 < F < 1), default 0.5.")

(* ---- optimize ---- *)

let optimize_cmd =
  let run () node l_nh f =
    let l = Rlc_tech.Units.nh_per_mm l_nh in
    let r = Rlc_core.Rlc_opt.optimize ~f node ~l in
    let rc = Rlc_core.Rc_opt.optimize node in
    Printf.printf "node           : %s\n" node.Rlc_tech.Node.name;
    Printf.printf "l              : %.3f nH/mm\n" l_nh;
    Printf.printf "h_optRLC       : %.4f mm   (h_optRC %.4f mm, ratio %.4f)\n"
      (r.Rlc_core.Rlc_opt.h *. 1e3)
      (rc.Rlc_core.Rc_opt.h_opt *. 1e3)
      (r.Rlc_core.Rlc_opt.h /. rc.Rlc_core.Rc_opt.h_opt);
    Printf.printf "k_optRLC       : %.1f      (k_optRC %.1f, ratio %.4f)\n"
      r.Rlc_core.Rlc_opt.k rc.Rlc_core.Rc_opt.k_opt
      (r.Rlc_core.Rlc_opt.k /. rc.Rlc_core.Rc_opt.k_opt);
    Printf.printf "stage delay    : %.3f ps (%.0f%% threshold)\n"
      (r.Rlc_core.Rlc_opt.tau *. 1e12) (f *. 100.0);
    Printf.printf "delay / length : %.4f ps/mm\n"
      (r.Rlc_core.Rlc_opt.delay_per_length *. 1e9);
    Printf.printf "method         : %s%s\n"
      (match r.Rlc_core.Rlc_opt.method_ with
      | Rlc_core.Rlc_opt.Newton_g -> "newton (paper's equations 7-8)"
      | Rlc_core.Rlc_opt.Nelder_mead -> "nelder-mead fallback")
      (if r.Rlc_core.Rlc_opt.newton_converged then
         Printf.sprintf ", %d iterations" r.Rlc_core.Rlc_opt.newton_iterations
       else "")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Optimal repeater size and segment length for a given inductance.")
    Term.(const run $ instr_term $ node_arg $ l_arg $ f_arg)

(* ---- delay ---- *)

let delay_cmd =
  let h_arg =
    Arg.(
      required
      & opt (some float) None
      & info [ "H"; "length" ] ~docv:"H" ~doc:"Segment length in mm.")
  in
  let k_arg =
    Arg.(
      required
      & opt (some float) None
      & info [ "k"; "size" ] ~docv:"K" ~doc:"Repeater size (multiple of minimum).")
  in
  let run () node l_nh f h_mm k =
    let l = Rlc_tech.Units.nh_per_mm l_nh in
    let stage =
      Rlc_core.Stage.of_node node ~l ~h:(Rlc_tech.Units.mm h_mm) ~k
    in
    let cs = Rlc_core.Pade.coeffs stage in
    let tau = Rlc_core.Delay.of_coeffs ~f cs in
    let l_crit = Rlc_core.Critical_inductance.of_stage stage in
    Printf.printf "b1             : %.6g s\n" cs.Rlc_core.Pade.b1;
    Printf.printf "b2             : %.6g s^2\n" cs.Rlc_core.Pade.b2;
    Printf.printf "damping        : %s (zeta = %.4f)\n"
      (match Rlc_core.Pade.classify cs with
      | Rlc_core.Pade.Underdamped -> "underdamped"
      | Rlc_core.Pade.Critically_damped -> "critical"
      | Rlc_core.Pade.Overdamped -> "overdamped")
      (Rlc_core.Pade.zeta cs);
    Printf.printf "l_crit         : %.4f nH/mm\n" (l_crit *. 1e6);
    Printf.printf "delay (%2.0f%%)    : %.3f ps\n" (f *. 100.0) (tau *. 1e12);
    Printf.printf "Elmore delay   : %.3f ps\n"
      (Rlc_core.Elmore.stage_delay stage *. 1e12);
    Printf.printf "overshoot      : %.2f%%\n"
      (Rlc_core.Step_response.overshoot cs *. 100.0)
  in
  Cmd.v
    (Cmd.info "delay" ~doc:"Delay analysis of an explicit (h, k) stage.")
    Term.(const run $ instr_term $ node_arg $ l_arg $ f_arg $ h_arg $ k_arg)

(* ---- sweep ---- *)

let sweep_cmd =
  let n_arg =
    Arg.(
      value
      & opt int 21
      & info [ "points" ] ~docv:"N" ~doc:"Number of sweep points.")
  in
  let run () node n jobs =
    let pool = pool_of_jobs jobs in
    let sweep = Rlc_experiments.Sweeps.run ~pool ~n node in
    Rlc_experiments.Sweeps.print_fig5 [ sweep ];
    Rlc_experiments.Sweeps.print_fig6 [ sweep ];
    Rlc_experiments.Sweeps.print_fig7 [ sweep ];
    Rlc_experiments.Sweeps.print_fig8 [ sweep ]
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep line inductance and print the optimization ratios.")
    Term.(const run $ instr_term $ node_arg $ n_arg $ jobs_arg)

(* ---- table1 ---- *)

let table1_cmd =
  let run () jobs =
    Rlc_experiments.Table1.print
      (Rlc_experiments.Table1.compute ~pool:(pool_of_jobs jobs) ())
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Regenerate Table 1 of the paper.")
    Term.(const run $ instr_term $ jobs_arg)

(* ---- ring ---- *)

let ring_cmd =
  let segments_arg =
    Arg.(
      value
      & opt int 12
      & info [ "segments" ] ~docv:"N" ~doc:"Ladder sections per line.")
  in
  let run () node l_nh segments jobs =
    let l = Rlc_tech.Units.nh_per_mm l_nh in
    let case =
      List.hd
        (Rlc_experiments.Ring_figs.waveforms ~pool:(pool_of_jobs jobs) ~node
           ~segments ~l_values:[ l ] ())
    in
    Rlc_experiments.Ring_figs.print_waveform_case case;
    let m = case.Rlc_experiments.Ring_figs.measurement in
    Printf.printf "peak current density : %.3e A/cm^2\n"
      (m.Rlc_ringosc.Analysis.peak_current_density /. 1e4);
    Printf.printf "rms current density  : %.3e A/cm^2\n"
      (m.Rlc_ringosc.Analysis.rms_current_density /. 1e4)
  in
  Cmd.v
    (Cmd.info "ring"
       ~doc:"Simulate the five-stage ring oscillator at one inductance.")
    Term.(const run $ instr_term $ node_arg $ l_arg $ segments_arg $ jobs_arg)

(* ---- extract ---- *)

let extract_cmd =
  let run () node =
    let g = node.Rlc_tech.Node.geometry in
    let quiet = Rlc_extraction.Capacitance.total ~miller:1.0 g in
    let best, worst = Rlc_extraction.Capacitance.miller_range g in
    let r = Rlc_extraction.Resistance.per_length g in
    let l_min = Rlc_extraction.Inductance.microstrip_loop g in
    let rc = Rlc_core.Rc_opt.optimize node in
    let l_worst =
      Rlc_extraction.Inductance.worst_case g ~length:rc.Rlc_core.Rc_opt.h_opt
    in
    Printf.printf "geometry            : %s\n"
      (Format.asprintf "%a" Rlc_extraction.Geometry.pp g);
    Printf.printf "r (bulk copper)     : %.3f ohm/mm (paper: %.3f)\n"
      (r /. 1e3)
      (node.Rlc_tech.Node.r /. 1e3);
    Printf.printf
      "c best / quiet / worst : %.1f / %.1f / %.1f pF/m (paper: %.1f)\n"
      (best *. 1e12) (quiet *. 1e12) (worst *. 1e12)
      (node.Rlc_tech.Node.c *. 1e12);
    Printf.printf "l loop-min          : %.3f nH/mm\n" (l_min *. 1e6);
    Printf.printf "l worst-case        : %.3f nH/mm (paper bound: < 5)\n"
      (l_worst *. 1e6)
  in
  Cmd.v
    (Cmd.info "extract"
       ~doc:"Analytic parasitic extraction for a node's top-metal geometry.")
    Term.(const run $ instr_term $ node_arg)

(* ---- extension commands ---- *)

let models_cmd =
  let run () node = Rlc_experiments.Extensions.print_model_accuracy ~node () in
  Cmd.v
    (Cmd.info "models"
       ~doc:
         "Delay-model accuracy ladder: Elmore / Kahng-Muddu / \
          Ismail-Friedman / Pade-2 / Pade-3 / exact.")
    Term.(const run $ instr_term $ node_arg)

let power_cmd =
  let run () node l_nh =
    Rlc_experiments.Extensions.print_power_pareto ~node
      ~l:(Rlc_tech.Units.nh_per_mm l_nh) ()
  in
  Cmd.v
    (Cmd.info "power" ~doc:"Power/delay Pareto front of repeater sizing.")
    Term.(const run $ instr_term $ node_arg $ l_arg)

let xtalk_cmd =
  let run () node = Rlc_experiments.Extensions.print_crosstalk ~node () in
  Cmd.v
    (Cmd.info "xtalk"
       ~doc:"Coupled-pair switching-delay spread and victim noise.")
    Term.(const run $ instr_term $ node_arg)

let wiresize_cmd =
  let run () node = Rlc_experiments.Extensions.print_wire_sizing ~node () in
  Cmd.v
    (Cmd.info "wiresize"
       ~doc:"Wire-width co-optimization inside the routing track.")
    Term.(const run $ instr_term $ node_arg)

let insert_cmd =
  let run () node l_nh =
    Rlc_experiments.Extensions.print_insertion ~node
      ~l:(Rlc_tech.Units.nh_per_mm l_nh) ()
  in
  Cmd.v
    (Cmd.info "insert"
       ~doc:"Integer repeater insertion for fixed-length nets.")
    Term.(const run $ instr_term $ node_arg $ l_arg)

let eye_cmd =
  let run () node = Rlc_experiments.Extensions.print_eye ~node () in
  Cmd.v
    (Cmd.info "eye" ~doc:"PRBS eye opening and jitter vs inductance.")
    Term.(const run $ instr_term $ node_arg)

let bode_cmd =
  let run () node l_nh =
    let stage =
      Rlc_core.Rc_opt.stage node ~l:(Rlc_tech.Units.nh_per_mm l_nh)
    in
    let pts = Rlc_core.Frequency.bode ~points:80 stage ~f_min:1e7 ~f_max:3e10 in
    Rlc_report.Ascii_plot.print
      ~title:
        (Printf.sprintf "|H| (dB) vs log10 f, %s at %.1f nH/mm"
           node.Rlc_tech.Node.name l_nh)
      [
        Rlc_report.Ascii_plot.series ~label:'m'
          ~xs:
            (Array.of_list
               (List.map (fun p -> Float.log10 p.Rlc_core.Frequency.freq) pts))
          ~ys:
            (Array.of_list
               (List.map (fun p -> p.Rlc_core.Frequency.mag_db) pts));
      ];
    (match Rlc_core.Frequency.resonance stage with
    | Some (f, db) ->
        Printf.printf "resonance: %.1f dB at %.2f GHz\n" db (f /. 1e9)
    | None -> print_endline "no resonant peaking (overdamped)");
    (match Rlc_core.Frequency.bandwidth_3db_opt stage with
    | Some bw -> Printf.printf "3 dB bandwidth: %.2f GHz\n" (bw /. 1e9)
    | None -> print_endline "3 dB bandwidth: beyond 1 THz (in-band)")
  in
  Cmd.v
    (Cmd.info "bode" ~doc:"Frequency response of the RC-sized stage.")
    Term.(const run $ instr_term $ node_arg $ l_arg)

let buffer_tree_cmd =
  let run () node = Rlc_experiments.Extensions.print_tree_buffering ~node () in
  Cmd.v
    (Cmd.info "buffer-tree"
       ~doc:"RLC-aware van Ginneken buffering of a branching demo net.")
    Term.(const run $ instr_term $ node_arg)

let variation_cmd =
  let run () node jobs =
    Rlc_experiments.Extensions.print_variation ~pool:(pool_of_jobs jobs) ~node
      ()
  in
  Cmd.v
    (Cmd.info "variation"
       ~doc:"Delay statistics under inductance/Miller/driver variation.")
    Term.(const run $ instr_term $ node_arg $ jobs_arg)

(* ---- whatif ---- *)

let whatif_cmd =
  let deck_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DECK" ~doc:"SPICE deck of the net to compile.")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "node" ] ~docv:"NODE" ~doc:"Output node of the net.")
  in
  let params_arg =
    Arg.(
      non_empty & opt_all string []
      & info [ "p"; "param" ] ~docv:"NAME:KIND"
          ~doc:
            "Element parameter to report sensitivities for (kind one of \
             r, l, c, m).  Repeatable.")
  in
  let run () deck_path out f params =
    let deck = Rlc_circuit.Parser.parse_file deck_path in
    let netlist = deck.Rlc_circuit.Parser.netlist in
    let node =
      match Rlc_circuit.Parser.node_of_name deck out with
      | Some n when n <> Rlc_circuit.Netlist.ground -> n
      | Some _ -> failwith "output node must not be ground"
      | None -> failwith (Printf.sprintf "unknown node %S" out)
    in
    let ws = Rlc_circuit.Whatif.compile ~f netlist in
    let parse_param tok =
      match String.rindex_opt tok ':' with
      | None ->
          failwith (Printf.sprintf "bad param %S (want name:r|l|c|m)" tok)
      | Some i ->
          let name = String.sub tok 0 i in
          let kind =
            match
              String.lowercase_ascii
                (String.sub tok (i + 1) (String.length tok - i - 1))
            with
            | "r" -> `R
            | "l" -> `L
            | "c" -> `C
            | "m" -> `M
            | k ->
                failwith
                  (Printf.sprintf "bad param kind %S (want r, l, c or m)" k)
          in
          Rlc_circuit.Whatif.param ws name kind
    in
    let wrt = Array.of_list (List.map parse_param params) in
    let target = Rlc_circuit.Whatif.Delay node in
    let tau = Rlc_circuit.Whatif.evaluate ws target in
    if Float.is_nan tau then
      failwith "no threshold crossing for the two-pole response";
    let grad = Rlc_circuit.Whatif.gradient ws target ~wrt in
    Printf.printf "node %s: %.0f%% delay %.4f ps\n" out (f *. 100.0)
      (tau *. 1e12);
    Printf.printf "%-20s %14s %14s %12s\n" "param" "value" "dtau/dvalue"
      "elasticity";
    List.iteri
      (fun i tok ->
        let v = Rlc_circuit.Whatif.base_value wrt.(i) in
        Printf.printf "%-20s %14.6g %14.6g %12.4f\n" tok v grad.(i)
          (grad.(i) *. v /. tau))
      params
  in
  Cmd.v
    (Cmd.info "whatif"
       ~doc:
         "Compile a deck into a what-if workspace and report adjoint \
          delay sensitivities (one forward + one adjoint solve for the \
          whole gradient).")
    Term.(const run $ instr_term $ deck_arg $ out_arg $ f_arg $ params_arg)

(* ---- pdn ---- *)

let pdn_cmd =
  let rows_arg =
    Arg.(
      value & opt int 12
      & info [ "rows" ] ~docv:"N" ~doc:"Grid rows of the power mesh.")
  in
  let cols_arg =
    Arg.(
      value & opt int 12
      & info [ "cols" ] ~docv:"N" ~doc:"Grid columns of the power mesh.")
  in
  let rlc_arg =
    Arg.(
      value & flag
      & info [ "rlc" ]
          ~doc:
            "Keep the segment and bump inductances (default: pure RC \
             mesh).")
  in
  let ppd_arg =
    Arg.(
      value & opt int 20
      & info [ "points-per-decade" ] ~docv:"N"
          ~doc:"Frequency points per decade of the impedance scan.")
  in
  let fstart_arg =
    Arg.(
      value & opt float 1e5
      & info [ "fstart" ] ~docv:"HZ" ~doc:"Scan start frequency.")
  in
  let fstop_arg =
    Arg.(
      value & opt float 1e9
      & info [ "fstop" ] ~docv:"HZ" ~doc:"Scan stop frequency.")
  in
  let run () rows cols rlc ppd fstart fstop jobs =
    let base = Rlc_circuit.Pdn.rc_grid ~rows ~cols () in
    let spec =
      if rlc then
        {
          base with
          Rlc_circuit.Pdn.l_seg = Rlc_circuit.Pdn.default.Rlc_circuit.Pdn.l_seg;
          l_via = Rlc_circuit.Pdn.default.Rlc_circuit.Pdn.l_via;
        }
      else base
    in
    let pdn = Rlc_circuit.Pdn.build spec in
    let plan = pdn.Rlc_circuit.Pdn.asm.Rlc_circuit.Assembly.plan in
    Printf.printf "# pdn %dx%d %s mesh: %d unknowns, %s backend (band %d)\n"
      rows cols
      (if rlc then "RLC" else "RC")
      (Rlc_circuit.Pdn.size pdn)
      (match plan.Rlc_numerics.Solver.choice with
      | Rlc_numerics.Solver.Sparse_lu -> "sparse"
      | Rlc_numerics.Solver.Banded_lu -> "banded"
      | Rlc_numerics.Solver.Dense_lu -> "dense")
      (plan.Rlc_numerics.Solver.kl + plan.Rlc_numerics.Solver.ku + 1);
    let freqs =
      Rlc_circuit.Ac.decade_grid ~points_per_decade:ppd ~fstart ~fstop
    in
    let at = (rows / 2, cols / 2) in
    let z =
      Rlc_circuit.Pdn.impedance ~pool:(pool_of_jobs jobs) pdn ~at ~freqs
    in
    Printf.printf "freq_hz,z_ohm\n";
    Array.iter (fun (f, zf) -> Printf.printf "%.6e,%.6e\n" f zf) z
  in
  Cmd.v
    (Cmd.info "pdn"
       ~doc:
         "AC impedance scan of an on-chip power-delivery grid (the \
          sparse solver backend's reference workload).")
    Term.(
      const run $ instr_term $ rows_arg $ cols_arg $ rlc_arg $ ppd_arg
      $ fstart_arg $ fstop_arg $ jobs_arg)

let main_cmd =
  let info =
    Cmd.info "rlcopt" ~version:"1.0.0"
      ~doc:
        "Performance optimization of distributed RLC interconnects \
         (reproduction of Banerjee & Mehrotra, DAC 2001)."
  in
  Cmd.group info
    [
      optimize_cmd; delay_cmd; sweep_cmd; table1_cmd; ring_cmd; extract_cmd;
      models_cmd; power_cmd; xtalk_cmd; wiresize_cmd; insert_cmd; eye_cmd;
      bode_cmd; buffer_tree_cmd; variation_cmd; whatif_cmd; pdn_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
