(* rlcsim -- run a SPICE-flavoured netlist on the MNA transient engine.

   Usage:  rlcsim CIRCUIT.sp [--csv OUT.csv] *)

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"NETLIST" ~doc:"Netlist file (see Rlc_circuit.Parser).")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Dump all probe waveforms as CSV.")

let probe_label deck = function
  | Rlc_circuit.Transient.Node_v n ->
      Printf.sprintf "v(%s)"
        (Option.value ~default:(Printf.sprintf "node%d" n)
           (Rlc_circuit.Parser.name_of_node deck n))
  | Rlc_circuit.Transient.Branch_i name -> Printf.sprintf "i(%s)" name

let summarize deck result probe =
  let w = Rlc_circuit.Transient.get result probe in
  let values = Rlc_waveform.Waveform.values w in
  let lo, hi = Rlc_numerics.Stats.min_max values in
  let final = values.(Array.length values - 1) in
  Printf.printf "%-16s  final %12.6g   min %12.6g   max %12.6g   rms %12.6g\n"
    (probe_label deck probe) final lo hi
    (Rlc_waveform.Measure.rms w)

let run file csv =
  match Rlc_circuit.Parser.parse_file file with
  | exception Rlc_circuit.Parser.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: %s\n" file line msg;
      exit 1
  | deck ->
      (match deck.Rlc_circuit.Parser.title with
      | Some t -> Printf.printf "* %s\n" t
      | None -> ());
      let result = Rlc_circuit.Parser.run deck in
      Printf.printf "transient: %d steps\n\n"
        (Rlc_circuit.Transient.steps_taken result);
      List.iter (summarize deck result) deck.Rlc_circuit.Parser.probes;
      match csv with
      | None -> ()
      | Some path ->
          let time = Rlc_circuit.Transient.time result in
          let waves =
            List.map
              (fun p ->
                ( probe_label deck p,
                  Rlc_waveform.Waveform.values
                    (Rlc_circuit.Transient.get result p) ))
              deck.Rlc_circuit.Parser.probes
          in
          let rows =
            List.init (Array.length time) (fun i ->
                time.(i) :: List.map (fun (_, vs) -> vs.(i)) waves)
          in
          Rlc_report.Csv.write ~path
            ~header:("time" :: List.map fst waves)
            ~rows;
          Printf.printf "\nwrote %s\n" path

let cmd =
  Cmd.v
    (Cmd.info "rlcsim" ~version:"1.0.0"
       ~doc:"Transient simulation of SPICE-flavoured RLC netlists.")
    Term.(const run $ file_arg $ csv_arg)

let () = exit (Cmd.eval cmd)
