(* rlcsim -- run a SPICE-flavoured netlist on the MNA engines.

   Usage:  rlcsim CIRCUIT.sp [--csv OUT.csv]          transient (.tran card)
           rlcsim CIRCUIT.sp --ac [--csv OUT.csv]     AC sweep (.ac card) *)

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some non_dir_file) None
    & info [] ~docv:"NETLIST" ~doc:"Netlist file (see Rlc_circuit.Parser).")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Dump all probe waveforms as CSV.")

let ac_arg =
  Arg.(
    value & flag
    & info [ "ac" ]
        ~doc:
          "Run the deck's .ac small-signal sweep instead of the transient \
           analysis; probed node voltages become Bode responses.")

let jobs_arg =
  Instr_cli.jobs_arg
    ~doc:
      "Worker domains for parallel fan-outs (AC frequency points; \
       speculative steps of the adaptive transient). Default: \
       $(b,RLC_JOBS) or the machine's recommended domain count. \
       Results are bit-identical for any value."

let instr_term = Instr_cli.term

let probe_label deck = function
  | Rlc_circuit.Transient.Node_v n ->
      Printf.sprintf "v(%s)"
        (Option.value ~default:(Printf.sprintf "node%d" n)
           (Rlc_circuit.Parser.name_of_node deck n))
  | Rlc_circuit.Transient.Branch_i name -> Printf.sprintf "i(%s)" name

let summarize deck result probe =
  let w = Rlc_circuit.Transient.get result probe in
  let values = Rlc_waveform.Waveform.values w in
  if Array.length values = 0 then
    Printf.printf "%-16s  (no samples)\n" (probe_label deck probe)
  else begin
    let lo, hi = Rlc_numerics.Stats.min_max values in
    let final = values.(Array.length values - 1) in
    Printf.printf
      "%-16s  final %12.6g   min %12.6g   max %12.6g   rms %12.6g\n"
      (probe_label deck probe) final lo hi
      (Rlc_waveform.Measure.rms w)
  end

let run_transient deck pool csv =
  let config =
    { Rlc_circuit.Transient.Config.default with pool = Some pool }
  in
  let result = Rlc_circuit.Parser.run ~config deck in
  Printf.printf "transient: %d steps\n\n"
    (Rlc_circuit.Transient.steps_taken result);
  List.iter (summarize deck result) deck.Rlc_circuit.Parser.probes;
  match csv with
  | None -> ()
  | Some path ->
      let time = Rlc_circuit.Transient.time result in
      let waves =
        List.map
          (fun p ->
            ( probe_label deck p,
              Rlc_waveform.Waveform.values
                (Rlc_circuit.Transient.get result p) ))
          deck.Rlc_circuit.Parser.probes
      in
      let rows =
        List.init (Array.length time) (fun i ->
            time.(i) :: List.map (fun (_, vs) -> vs.(i)) waves)
      in
      Rlc_report.Csv.write ~path
        ~header:("time" :: List.map fst waves)
        ~rows;
      Printf.printf "\nwrote %s\n" path

let run_ac deck pool csv =
  let open Rlc_circuit in
  let spec =
    match deck.Parser.ac with
    | Some s -> s
    | None ->
        prerr_endline "rlcsim: --ac requested but the deck has no .ac card";
        exit 1
  in
  let m = Mna.of_netlist deck.Parser.netlist in
  if Array.length m.Mna.inputs > 1 then
    Printf.eprintf
      "rlcsim: %d independent sources; sweeping the first one (%s)\n"
      (Array.length m.Mna.inputs)
      m.Mna.inputs.(0).Mna.name;
  let freqs =
    Ac.decade_grid ~points_per_decade:spec.Parser.points_per_decade
      ~fstart:spec.Parser.fstart ~fstop:spec.Parser.fstop
  in
  let node_probes =
    List.filter_map
      (fun p ->
        match p with
        | Transient.Node_v n -> Some (probe_label deck p, n)
        | Transient.Branch_i _ ->
            Printf.eprintf "rlcsim: skipping %s (AC sweep probes voltages)\n"
              (probe_label deck p);
            None)
      deck.Parser.probes
  in
  if node_probes = [] then begin
    prerr_endline "rlcsim: no voltage probes for the AC sweep";
    exit 1
  end;
  Printf.printf "ac: %d points, %g Hz .. %g Hz\n\n" (Array.length freqs)
    spec.Parser.fstart spec.Parser.fstop;
  let sweeps =
    List.map
      (fun (label, node) ->
        let output = Mna.output_of_node m node in
        (label, Ac.bode ~pool m ~input:0 ~output ~freqs))
      node_probes
  in
  List.iter
    (fun (label, pts) ->
      let first = pts.(0) and last = pts.(Array.length pts - 1) in
      Printf.printf
        "%-16s  %12.6g dB at %10.4g Hz   ...   %12.6g dB at %10.4g Hz\n"
        label first.Ac.mag_db first.Ac.freq last.Ac.mag_db last.Ac.freq)
    sweeps;
  match csv with
  | None -> ()
  | Some path ->
      let header =
        "freq"
        :: List.concat_map
             (fun (label, _) ->
               [
                 "mag_db(" ^ label ^ ")";
                 "phase_deg(" ^ label ^ ")";
                 "phase_unwrapped_deg(" ^ label ^ ")";
               ])
             sweeps
      in
      let unwrapped =
        List.map
          (fun (_, pts) -> Ac.unwrap (Array.map (fun p -> p.Ac.phase_deg) pts))
          sweeps
      in
      let rows =
        List.init (Array.length freqs) (fun i ->
            freqs.(i)
            :: List.concat
                 (List.map2
                    (fun (_, pts) unw ->
                      [ pts.(i).Ac.mag_db; pts.(i).Ac.phase_deg; unw.(i) ])
                    sweeps unwrapped))
      in
      Rlc_report.Csv.write ~path ~header ~rows;
      Printf.printf "\nwrote %s\n" path

let run () file ac jobs csv =
  let pool = Rlc_parallel.Pool.create ~domains:jobs () in
  match Rlc_circuit.Parser.parse_file file with
  | exception Rlc_circuit.Parser.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: %s\n" file line msg;
      exit 1
  | deck ->
      (match deck.Rlc_circuit.Parser.title with
      | Some t -> Printf.printf "* %s\n" t
      | None -> ());
      if ac then run_ac deck pool csv else run_transient deck pool csv

let cmd =
  Cmd.v
    (Cmd.info "rlcsim" ~version:"1.0.0"
       ~doc:"Transient and AC simulation of SPICE-flavoured RLC netlists.")
    Term.(const run $ instr_term $ file_arg $ ac_arg $ jobs_arg $ csv_arg)

let () = exit (Cmd.eval cmd)
