# Convenience targets; everything is plain dune underneath.

.PHONY: all build check fmt fmt-check test test-jobs4 test-all stats-check bench bench-fast bench-smoke serve-demo obs-check examples clean

all: build

# what CI runs (see .github/workflows/ci.yml): the test suite under a
# sequential and a 4-domain pool, once more with metrics recording on
# (results must not change by a bit), the bench smoke (which asserts
# the parallel runs are bit-identical, gates the disabled-path
# instrumentation overhead and the serving layer's warm >= 2x cache
# speedup, and records BENCH_parallel.json / BENCH_instr.json /
# BENCH_serve.json / BENCH_obs.json), the rlcserved demo round-trip,
# and the observability gate below
check: build test test-jobs4 stats-check bench-smoke serve-demo obs-check

# observability self-check: journal a short rlcserved run, roll it up
# with rlcstat, and self-diff the freshly written BENCH_obs.json (the
# bench smoke gates journaling overhead < 2% and bitwise identity) —
# identical snapshots must produce zero findings and exit 0
# standalone runs need the snapshot the bench smoke writes
BENCH_obs.json:
	dune exec bench/main.exe -- --smoke

obs-check: BENCH_obs.json
	dune exec bin/rlcserved.exe -- --jobs-file examples/jobs/demo.jobs -q \
	  --journal _obs_demo.jsonl > /dev/null
	dune exec bin/rlcstat.exe -- _obs_demo.jsonl
	dune exec bin/rlcstat.exe -- diff BENCH_obs.json BENCH_obs.json
	rm -f _obs_demo.jsonl

build:
	dune build @all

# formatting is a separate CI job (needs the ocamlformat binary, which
# not every dev box has) — not part of `check`
fmt:
	dune build @fmt --auto-promote

fmt-check:
	dune build @fmt

test-jobs4:
	RLC_JOBS=4 dune runtest --force

# the whole suite with rlc_instr recording on: every waveform/number
# must still be bit-identical (recording must never perturb results)
stats-check:
	RLC_STATS=1 dune runtest --force

test:
	dune runtest

test-all:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt

bench:
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

bench-fast:
	dune exec bench/main.exe -- --fast

# tiny dense-vs-banded cross-check (also part of `dune runtest`)
bench-smoke:
	dune exec bench/main.exe -- --smoke

# round-trip the demo job stream through rlcserved and diff against
# the checked-in golden (results are bit-identical at any -j)
serve-demo:
	dune exec bin/rlcserved.exe -- --jobs-file examples/jobs/demo.jobs -q \
	  | diff examples/jobs/demo.golden -

examples:
	dune exec examples/quickstart.exe
	dune exec examples/inductance_sweep.exe
	dune exec examples/scaling_study.exe
	dune exec examples/signal_integrity.exe
	dune exec examples/tree_buffering.exe
	dune exec examples/bus_shielding.exe
	dune exec examples/clock_tree.exe
	dune exec examples/ring_oscillator.exe

clean:
	dune clean
